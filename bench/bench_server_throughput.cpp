// Campaign-service throughput: run an in-process ddl::service::ScenarioServer
// on a loopback ephemeral port and hammer it with 1, 4 and 16 concurrent
// clients, each submitting single-scenario jobs back-to-back over the framed
// wire protocol.  Reports end-to-end scenarios/sec and the p50/p99
// submit->job_done latency per client count -- the full path (frame encode,
// socket, validate, journal, schedule, execute, stream, reassemble), not
// just the scenario kernel.
//
// A second probe routes the 4-client configuration through a fault-free
// ddl::service::ChaosProxy, measuring the relay's clean-path tax (the
// chaos CI job runs every storm through it, so its passthrough overhead
// should stay a small, known fraction of end-to-end latency).
//
// Writes BENCH_server_throughput.json; the `guardrail_` key feeds
// scripts/check_bench_regression.py against
// bench/baselines/server_throughput_baseline.json.  DDL_BENCH_TRIALS scales
// the jobs-per-client count on fast machines.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "ddl/analysis/bench_json.h"
#include "ddl/scenario/spec.h"
#include "ddl/service/chaos_proxy.h"
#include "ddl/service/client.h"
#include "ddl/service/server.h"

namespace {

namespace fs = std::filesystem;

using ddl::scenario::LoadSpec;
using ddl::scenario::ScenarioSpec;
using ddl::service::ClientConfig;
using ddl::service::ScenarioClient;
using ddl::service::ScenarioServer;
using ddl::service::ServiceConfig;

/// A short closed-loop run (~10 ms of kernel work): small enough that the
/// wire and scheduling overhead is a visible fraction of the latency, large
/// enough to be a real scenario rather than a no-op.
ScenarioSpec bench_spec(std::uint64_t seed) {
  ScenarioSpec spec;
  spec.name = "bench/proposed/typical/srv";
  spec.family = "bench";
  spec.seed = seed;
  spec.load = LoadSpec::constant(0.4);
  spec.periods = 600;
  spec.measure_from = 400;
  spec.allow_limit_cycling = true;
  spec.tolerance_v = 0.05;
  return spec;
}

struct RunStats {
  double scenarios_per_sec = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  bool all_done = true;
};

double percentile(std::vector<double>& sorted_ms, double p) {
  if (sorted_ms.empty()) {
    return 0.0;
  }
  const auto rank = static_cast<std::size_t>(
      p * static_cast<double>(sorted_ms.size() - 1) + 0.5);
  return sorted_ms[std::min(rank, sorted_ms.size() - 1)];
}

/// One measurement: a fresh server, `clients` threads, `jobs_each`
/// single-scenario jobs per thread submitted back-to-back.  Unique seeds
/// and tags keep every job distinct, so nothing short-circuits through the
/// idempotent-replay path.  With `through_proxy` the clients connect via a
/// zero-fault ChaosProxy instead of the server directly, isolating the
/// relay's passthrough overhead.
RunStats run_config(std::size_t clients, std::size_t jobs_each,
                    const std::string& state_root,
                    bool through_proxy = false) {
  ServiceConfig config;
  config.tcp_port = 0;  // Ephemeral.
  config.workers = std::max<std::size_t>(2, std::thread::hardware_concurrency());
  config.max_inflight_per_client = 4;
  config.max_pending_jobs_per_client = 4;
  config.heartbeat_ms = 60'000;
  config.state_dir = state_root + (through_proxy ? "/p" : "/c") +
                     std::to_string(clients);
  fs::create_directories(config.state_dir);

  ScenarioServer server(config);
  if (!server.start()) {
    std::fprintf(stderr, "server start failed\n");
    return {.scenarios_per_sec = 0, .p50_ms = 0, .p99_ms = 0,
            .all_done = false};
  }

  std::unique_ptr<ddl::service::ChaosProxy> proxy;
  int connect_port = server.tcp_port();
  if (through_proxy) {
    ddl::service::ChaosProxyConfig proxy_config;
    proxy_config.upstream_port = server.tcp_port();
    proxy_config.p_reset_permille = 0;
    proxy_config.p_truncate_permille = 0;
    proxy_config.p_fuzz_permille = 0;
    proxy_config.p_duplicate_permille = 0;
    proxy_config.p_trickle_permille = 0;
    proxy_config.p_stall_permille = 0;
    proxy_config.p_split_permille = 0;
    proxy = std::make_unique<ddl::service::ChaosProxy>(proxy_config);
    if (!proxy->start()) {
      std::fprintf(stderr, "proxy start failed\n");
      server.stop();
      return {.scenarios_per_sec = 0, .p50_ms = 0, .p99_ms = 0,
              .all_done = false};
    }
    connect_port = proxy->listen_port();
  }

  std::vector<std::vector<double>> latencies(clients);
  std::vector<bool> done(clients, true);
  ddl::analysis::WallTimer wall;
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      ClientConfig cc;
      cc.tcp_port = connect_port;
      cc.name = "bench-" + std::to_string(c);
      cc.recv_timeout_ms = 60'000;
      ScenarioClient client(cc);
      if (!client.connect()) {
        done[c] = false;
        return;
      }
      for (std::size_t j = 0; j < jobs_each; ++j) {
        ddl::analysis::WallTimer lap;
        const auto sub = client.submit_specs(
            "job-" + std::to_string(j),
            {bench_spec(1000 * (c + 1) + j)});
        if (!sub.accepted || !client.wait(sub.job_id).done) {
          done[c] = false;
          return;
        }
        latencies[c].push_back(lap.elapsed_ms());
      }
      client.bye();
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  const double wall_ms = wall.elapsed_ms();
  if (proxy != nullptr) {
    proxy->stop();
  }
  server.stop();

  RunStats stats;
  std::vector<double> all;
  for (std::size_t c = 0; c < clients; ++c) {
    stats.all_done = stats.all_done && done[c];
    all.insert(all.end(), latencies[c].begin(), latencies[c].end());
  }
  std::sort(all.begin(), all.end());
  stats.scenarios_per_sec =
      1e3 * static_cast<double>(all.size()) / std::max(wall_ms, 1e-6);
  stats.p50_ms = percentile(all, 0.50);
  stats.p99_ms = percentile(all, 0.99);
  return stats;
}

}  // namespace

int main() {
  const std::size_t jobs_each =
      6 * ddl::analysis::BenchReport::trials_or(1);
  const std::string state_root =
      (fs::temp_directory_path() / "ddl_bench_server_throughput").string();
  fs::remove_all(state_root);

  std::printf("==== Campaign service throughput (%zu jobs/client, 1 "
              "scenario/job) ====\n\n", jobs_each);

  ddl::analysis::BenchReport report("server_throughput");
  report.set("jobs_per_client", static_cast<std::uint64_t>(jobs_each));

  bool all_done = true;
  double guardrail = 0.0;
  RunStats direct_4;
  const std::size_t configs[] = {1, 4, 16};
  for (const std::size_t clients : configs) {
    const RunStats stats = run_config(clients, jobs_each, state_root);
    all_done = all_done && stats.all_done;
    // The guardrail floor tracks the *best* configuration: total throughput
    // normally rises with concurrency, and taking the max keeps the metric
    // insensitive to which client count a slow runner happens to starve.
    guardrail = std::max(guardrail, stats.scenarios_per_sec);
    if (clients == 4) {
      direct_4 = stats;
    }
    std::printf("  clients=%2zu: %7.1f scenarios/sec   p50 %7.2f ms   "
                "p99 %7.2f ms%s\n",
                clients, stats.scenarios_per_sec, stats.p50_ms, stats.p99_ms,
                stats.all_done ? "" : "   [INCOMPLETE]");
    const std::string prefix = "clients_" + std::to_string(clients);
    report.set(prefix + "_scenarios_per_sec", stats.scenarios_per_sec);
    report.set(prefix + "_p50_ms", stats.p50_ms);
    report.set(prefix + "_p99_ms", stats.p99_ms);
  }

  // Clean-path tax of the chaos relay: the same 4-client hammering with a
  // zero-fault proxy spliced between the endpoints.
  const RunStats proxied =
      run_config(4, jobs_each, state_root, /*through_proxy=*/true);
  all_done = all_done && proxied.all_done;
  const double overhead_pct =
      direct_4.p50_ms > 0.0
          ? 100.0 * (proxied.p50_ms - direct_4.p50_ms) / direct_4.p50_ms
          : 0.0;
  std::printf("  clients= 4 via clean proxy: %7.1f scenarios/sec   "
              "p50 %7.2f ms   p99 %7.2f ms   (p50 overhead %+.1f%%)%s\n",
              proxied.scenarios_per_sec, proxied.p50_ms, proxied.p99_ms,
              overhead_pct, proxied.all_done ? "" : "   [INCOMPLETE]");
  report.set("proxy_clients_4_scenarios_per_sec", proxied.scenarios_per_sec);
  report.set("proxy_clients_4_p50_ms", proxied.p50_ms);
  report.set("proxy_clients_4_p99_ms", proxied.p99_ms);
  report.set("proxy_clients_4_p50_overhead_pct", overhead_pct);

  report.set("all_jobs_done", all_done);
  report.set("guardrail_server_scenarios_per_sec", guardrail);
  std::printf("\nall jobs completed: %s\n", all_done ? "yes" : "NO");
  const auto path = report.write();
  std::printf("report: %s\n", path.c_str());
  fs::remove_all(state_root);
  return all_done ? 0 : 1;
}
