// Batched scenario execution throughput: the MC-yield suite through the
// ScenarioRunner's batch planner (cross-scenario dies packed into the
// 8-lane SoA kernel, one workspace sizing per group) versus the same
// suite with mc_force_scalar (the per-die scalar reference path), at the
// same thread count.  The planner's contract is byte-identity, so the
// bench also cross-checks that both variants emit the identical JSONL
// stream before reporting any speedup.
//
// Writes BENCH_scenario_batch.json; DDL_BENCH_TRIALS repeats the suite to
// stretch the workload on fast machines.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "ddl/analysis/bench_json.h"
#include "ddl/analysis/parallel.h"
#include "ddl/scenario/registry.h"
#include "ddl/scenario/runner.h"

namespace {

struct Measured {
  double wall_ms = 0.0;
  double per_sec = 0.0;
  std::string jsonl;
};

Measured run_variant(const std::vector<ddl::scenario::ScenarioSpec>& specs,
                     std::size_t threads) {
  const ddl::scenario::ScenarioRunner runner(threads);
  ddl::analysis::WallTimer timer;
  const auto results = runner.run(specs);
  Measured out;
  out.wall_ms = timer.elapsed_ms();
  out.per_sec = 1e3 * static_cast<double>(results.size()) / out.wall_ms;
  out.jsonl = ddl::scenario::ScenarioRunner::jsonl(results);
  return out;
}

}  // namespace

int main() {
  const auto& registry = ddl::scenario::ScenarioRegistry::builtin();
  const std::size_t repeats = ddl::analysis::BenchReport::trials_or(8);
  std::vector<ddl::scenario::ScenarioSpec> batched;
  for (std::size_t i = 0; i < repeats; ++i) {
    for (auto& spec : registry.expand("yield")) {
      batched.push_back(std::move(spec));
    }
  }
  std::vector<ddl::scenario::ScenarioSpec> scalar = batched;
  for (ddl::scenario::ScenarioSpec& spec : scalar) {
    spec.mc_force_scalar = true;
  }

  std::printf("==== Batched scenario execution (%zu scenarios = yield x %zu) "
              "====\n\n", batched.size(), repeats);

  ddl::analysis::BenchReport report("scenario_batch");
  report.set("scenarios", static_cast<std::uint64_t>(batched.size()));

  bool identical = true;
  double speedup_t1 = 0.0;
  double batched_t1_per_sec = 0.0;
  const std::size_t configs[] = {1, ddl::analysis::default_thread_count()};
  const char* labels[] = {"threads_1", "threads_default"};
  for (int c = 0; c < 2; ++c) {
    const Measured planned = run_variant(batched, configs[c]);
    const Measured forced = run_variant(scalar, configs[c]);
    identical = identical && planned.jsonl == forced.jsonl;
    const double speedup = forced.wall_ms / planned.wall_ms;
    if (c == 0) {
      speedup_t1 = speedup;
      batched_t1_per_sec = planned.per_sec;
    }

    std::printf("  %-16s (%zu threads): batched %7.1f ms (%6.1f/sec)  "
                "scalar %7.1f ms (%6.1f/sec)  speedup %.2fx\n",
                labels[c], configs[c], planned.wall_ms, planned.per_sec,
                forced.wall_ms, forced.per_sec, speedup);
    report.set(std::string(labels[c]) + "_threads",
               static_cast<std::uint64_t>(configs[c]));
    report.set(std::string(labels[c]) + "_batched_scenarios_per_sec",
               planned.per_sec);
    report.set(std::string(labels[c]) + "_scalar_scenarios_per_sec",
               forced.per_sec);
    report.set(std::string(labels[c]) + "_speedup", speedup);
  }

  std::printf("\nBatched and forced-scalar JSONL byte-identical: %s\n",
              identical ? "yes" : "NO -- PLANNER BROKE BYTE-IDENTITY");
  report.set("guardrail_scenario_batch_scenarios_per_sec", batched_t1_per_sec);
  report.set("scenario_batch_speedup_vs_scalar", speedup_t1);
  report.set("scenario_batch_jsonl_identical", identical);
  const auto path = report.write();
  std::printf("report: %s\n", path.c_str());
  return identical ? 0 : 1;
}
