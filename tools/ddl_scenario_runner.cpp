// ddl_scenario_runner: expand a named suite from the scenario registry, run
// it on the crash-safe campaign engine, stream one JSONL record per scenario
// and print (or write) a suite-level aggregate summary.
//
//   ddl_scenario_runner --list
//   ddl_scenario_runner --suite smoke
//   ddl_scenario_runner --suite regression --filter proposed --jobs 4
//   ddl_scenario_runner --suite regression --journal runs/nightly --out r.jsonl
//   ddl_scenario_runner --suite regression --resume runs/nightly --out r.jsonl
//   ddl_scenario_runner --suite smoke --chaos 32 --chaos-seed 7 --shrink
//   ddl_scenario_runner --replay replay_chaos_....json
//
// Scenario records never carry thread-count or wall-clock fields, so the
// JSONL stream is byte-identical for any --jobs value and across any
// kill/--resume split; the aggregate (which does report threads and wall
// time) goes to stderr and to the standard BENCH_scenario_suite_<name>.json
// file instead.  Exit status is the number of failed scenarios (capped at
// 125 to stay clear of shell codes); 64 = usage error, 66 = file error,
// 130 = interrupted (SIGTERM/SIGINT: in-flight scenarios finish and
// journal, the rest stays pending -- rerun with --resume to pick them up).
#include <atomic>
#include <climits>
#include <csignal>
#include <cstdio>
#include <exception>
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "ddl/analysis/bench_json.h"
#include "ddl/analysis/parallel.h"
#include "ddl/scenario/campaign.h"
#include "ddl/scenario/chaos.h"
#include "ddl/scenario/cli.h"
#include "ddl/scenario/journal.h"
#include "ddl/scenario/registry.h"
#include "ddl/scenario/runner.h"

namespace {

using namespace ddl;

// SIGTERM/SIGINT flip this flag (the only async-signal-safe thing to do);
// the campaign polls it before *starting* each scenario, so in-flight work
// finishes and journals normally and the journal stays resumable.
std::atomic<bool> g_stop{false};

void on_signal(int) { g_stop.store(true, std::memory_order_relaxed); }

void list_suites(std::ostream& os) {
  const auto& registry = scenario::ScenarioRegistry::builtin();
  for (const std::string& suite : registry.suite_names()) {
    const auto specs = registry.expand(suite);
    os << suite << " (" << specs.size() << " scenarios)\n";
    for (const auto& spec : specs) {
      os << "  " << spec.name << "\n";
    }
  }
}

int run_replay(const std::string& path) {
  std::string content;
  try {
    content = [&] {
      std::string buffer;
      FILE* file = std::fopen(path.c_str(), "rb");
      if (file == nullptr) {
        throw std::runtime_error("cannot read '" + path + "'");
      }
      char chunk[4096];
      std::size_t got = 0;
      while ((got = std::fread(chunk, 1, sizeof(chunk), file)) > 0) {
        buffer.append(chunk, got);
      }
      std::fclose(file);
      return buffer;
    }();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 66;
  }

  scenario::ReplayBundle bundle;
  try {
    bundle = scenario::parse_replay_bundle(content);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 64;
  }
  const scenario::ReplayOutcome outcome = scenario::replay(bundle);
  std::cout << scenario::to_json_line(outcome.result) << "\n";
  std::cerr << (outcome.reproduced ? "replay: reproduced '"
                                   : "replay: did NOT reproduce '")
            << bundle.expected_failure_reason << "' (got '"
            << outcome.result.failure_reason << "')\n";
  return outcome.reproduced ? 0 : 1;
}

std::string bundle_file_name(const std::string& scenario_name) {
  std::string name = "replay_" + scenario_name + ".json";
  for (char& c : name) {
    if (c == '/') {
      c = '_';
    }
  }
  return name;
}

/// --shrink: delta-debug every verdict failure down to a 1-minimal fault
/// plan and drop a replay bundle next to the journal (or in the working
/// directory).  Returns the bundle paths written.
std::vector<std::string> shrink_failures(
    const std::vector<scenario::ScenarioSpec>& specs,
    const std::vector<scenario::ScenarioResult>& results,
    const std::string& dir) {
  std::vector<std::string> bundles;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const scenario::ScenarioResult& result = results[i];
    // Only completed verdict failures shrink: error rows (timeouts) are not
    // deterministically reproducible, and fault-free specs have no plan to
    // shrink.
    if (result.pass || result.error != scenario::ScenarioError::kNone ||
        specs[i].faults.empty()) {
      continue;
    }
    const scenario::ShrinkReport report = scenario::shrink_failure(specs[i]);
    if (!report.failing) {
      continue;  // Flaky under re-execution; nothing reproducible to bundle.
    }
    const std::string path =
        (dir.empty() ? std::string(".") : dir) + "/" +
        bundle_file_name(specs[i].name);
    analysis::write_file_atomic(path, scenario::replay_bundle_json(report));
    std::cerr << "shrink: " << specs[i].name << " -> " << path << " ("
              << specs[i].faults.size() << " faults -> "
              << report.minimal.faults.size() << ", " << report.runs
              << " runs)\n";
    bundles.push_back(path);
  }
  return bundles;
}

}  // namespace

int main(int argc, char** argv) {
  const scenario::ParsedArgs parsed =
      scenario::parse_runner_args({argv + 1, argv + argc});
  if (!parsed.ok()) {
    std::cerr << "error: " << parsed.error << "\n";
    std::cerr << scenario::runner_usage();
    return 64;
  }
  const scenario::RunnerOptions& options = parsed.options;
  if (options.help) {
    std::cout << scenario::runner_usage();
    return 0;
  }
  if (options.list) {
    list_suites(std::cout);
    return 0;
  }
  if (!options.replay_path.empty()) {
    return run_replay(options.replay_path);
  }

  const auto& registry = scenario::ScenarioRegistry::builtin();
  if (!registry.has_suite(options.suite)) {
    std::cerr << "error: unknown suite '" << options.suite
              << "' (--list shows them)\n";
    return 64;
  }
  auto specs = registry.expand_filtered(options.suite, options.filter);
  if (specs.empty()) {
    std::cerr << "error: filter '" << options.filter
              << "' matches nothing in '" << options.suite << "'\n";
    return 64;
  }

  if (options.chaos_storms > 0) {
    scenario::ChaosCampaignSpec chaos;
    chaos.base = specs.front();
    chaos.storms = options.chaos_storms;
    chaos.seed = options.chaos_seed;
    chaos.max_faults_per_storm = options.chaos_max_faults;
    try {
      specs = scenario::expand_chaos(chaos);
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what() << "\n";
      return 64;
    }
  }

  if (options.inject_hang_ms > 0) {
    // Test hook: the first scenario hangs on every attempt, so the watchdog
    // times it out, retries it and reports a structured error row while the
    // rest of the batch completes normally.
    specs.front().debug_hang_ms = options.inject_hang_ms;
    specs.front().debug_hang_attempts = INT_MAX;
  }
  if (!options.inject_crash_kind.empty()) {
    // Test hook: crash the selected scenarios inside their sandbox worker.
    // The supervisor classifies the death (kCrash / kResourceLimit),
    // respawns the worker and the rest of the batch completes normally.
    if (options.inject_crash_match.empty()) {
      specs.front().debug_crash = options.inject_crash_kind;
    } else {
      for (auto& spec : specs) {
        if (spec.name.find(options.inject_crash_match) != std::string::npos) {
          spec.debug_crash = options.inject_crash_kind;
        }
      }
    }
  }

  scenario::CampaignConfig config;
  config.journal_dir = options.journal_dir;
  config.resume = options.resume;
  config.jobs = options.jobs;
  config.timeout_ms = options.timeout_ms;
  config.max_retries = options.retries;
  config.backoff_base_ms = options.backoff_ms;
  config.stop = &g_stop;
  config.isolation_mode = options.isolation == "thread"
                              ? scenario::IsolationMode::kThread
                              : scenario::IsolationMode::kProcess;
  config.limits.mem_limit_mb = options.mem_limit_mb;
  config.limits.cpu_limit_s = options.cpu_limit_s;
  std::signal(SIGTERM, on_signal);
  std::signal(SIGINT, on_signal);

  analysis::WallTimer timer;
  scenario::CampaignOutcome outcome;
  try {
    outcome = scenario::Campaign(config).run(specs);
  } catch (const scenario::JournalIoError& e) {
    // Disk fault (ENOSPC, EIO): the journal is fail-closed, nothing was
    // half-committed.  EX_IOERR distinguishes this from a usage error.
    std::cerr << "error: " << e.what() << "\n";
    return 74;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 64;
  }
  const double wall_ms = timer.elapsed_ms();
  const auto summary = scenario::summarize(outcome.results);

  // The per-scenario stream: stdout by default, --out FILE otherwise
  // (atomic, so a crash mid-write never leaves a torn artifact).
  try {
    if (options.out_path.empty()) {
      std::cout << outcome.jsonl();
    } else {
      analysis::write_file_atomic(options.out_path, outcome.jsonl());
    }
    // The health-event stream (recovery suites): same determinism contract
    // as the result stream -- spec order, then per-supervisor event order.
    if (!options.health_out_path.empty()) {
      analysis::write_file_atomic(options.health_out_path,
                                  outcome.health_jsonl);
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 66;
  }

  std::vector<std::string> bundles;
  if (options.shrink) {
    bundles = shrink_failures(specs, outcome.results, options.journal_dir);
  }

  // The aggregate record is a BenchReport, so it (and only it) carries
  // schema_version, threads and wall time.
  ddl::analysis::BenchReport report("scenario_suite_" + options.suite);
  report.set("threads",
             static_cast<std::uint64_t>(
                 options.jobs ? options.jobs
                              : ddl::analysis::default_thread_count()));
  report.set("suite", options.suite);
  if (!options.filter.empty()) {
    report.set("filter", options.filter);
  }
  report.set("scenarios", static_cast<std::uint64_t>(summary.total));
  report.set("passed", static_cast<std::uint64_t>(summary.passed));
  report.set("failed",
             static_cast<std::uint64_t>(summary.total - summary.passed));
  report.set("locked", static_cast<std::uint64_t>(summary.locked));
  std::size_t health_events = 0;
  for (const auto& result : outcome.results) {
    health_events += result.health.size();
  }
  report.set("health_events", static_cast<std::uint64_t>(health_events));
  // Campaign accounting: how the batch executed, not how it verdicted.
  report.set("executed", static_cast<std::uint64_t>(outcome.executed));
  report.set("resumed", static_cast<std::uint64_t>(outcome.resumed));
  report.set("retried", static_cast<std::uint64_t>(outcome.retried));
  report.set("timeouts", static_cast<std::uint64_t>(outcome.timeouts));
  report.set("exceptions", static_cast<std::uint64_t>(outcome.exceptions));
  report.set("abandoned_threads",
             static_cast<std::uint64_t>(outcome.abandoned_threads));
  report.set("skipped", static_cast<std::uint64_t>(outcome.skipped));
  report.set("interrupted", outcome.interrupted);
  report.set("isolation", options.isolation);
  report.set("sandbox_crashes",
             static_cast<std::uint64_t>(outcome.sandbox_crashes));
  report.set("workers_respawned",
             static_cast<std::uint64_t>(outcome.workers_respawned));
  report.set("resource_kills",
             static_cast<std::uint64_t>(outcome.resource_kills));
  report.set("workers_lost",
             static_cast<std::uint64_t>(outcome.workers_lost));
  if (options.chaos_storms > 0) {
    report.set("chaos_storms",
               static_cast<std::uint64_t>(options.chaos_storms));
    report.set("chaos_seed", options.chaos_seed);
    report.set("replay_bundles", static_cast<std::uint64_t>(bundles.size()));
  }
  // Kernel execution counters summed across the suite (zero for purely
  // behavioral scenarios; see ScenarioResult::kernel).
  report.set("kernel_signal_events", summary.kernel.signal_events);
  report.set("kernel_tasks", summary.kernel.tasks);
  report.set("kernel_cancelled_inertial", summary.kernel.cancelled_inertial);
  report.set("kernel_executed_events", summary.kernel.total());
  report.set("wall_ms", wall_ms);
  for (const auto& [reason, count] : summary.failures) {
    report.set("failures." + reason, static_cast<std::uint64_t>(count));
  }
  for (const auto& [family, counts] : summary.by_family) {
    report.set("family." + family + ".passed",
               static_cast<std::uint64_t>(counts.first));
    report.set("family." + family + ".total",
               static_cast<std::uint64_t>(counts.second));
  }
  // The aggregate stays OUT of the JSONL stream so the artifact is
  // byte-identical for any --jobs value: summary to stderr, plus the
  // standard BENCH_*.json file (DDL_BENCH_DIR) for CI collection.
  std::cerr << report.to_json() << "\n";
  report.write();

  if (outcome.interrupted) {
    std::cerr << "interrupted: " << outcome.skipped
              << " scenarios never started";
    if (!options.journal_dir.empty()) {
      std::cerr << "; resume with --resume " << options.journal_dir;
    }
    std::cerr << "\n";
    return 130;
  }
  const std::size_t failed = summary.total - summary.passed;
  return static_cast<int>(failed > 125 ? 125 : failed);
}
