// ddl_scenario_runner: expand a named suite from the scenario registry, run
// it on the parallel batch runner, stream one JSONL record per scenario and
// print (or write) a suite-level aggregate summary.
//
//   ddl_scenario_runner --list
//   ddl_scenario_runner --suite smoke
//   ddl_scenario_runner --suite regression --filter proposed --jobs 4
//   ddl_scenario_runner --suite regression --out results.jsonl
//   ddl_scenario_runner --suite recovery --health-out health.jsonl
//
// Scenario records never carry thread-count or wall-clock fields, so the
// JSONL stream is byte-identical for any --jobs value; the aggregate (which
// does report threads and wall time) goes to stderr and to the standard
// BENCH_scenario_suite_<name>.json file instead.  Exit status is the number
// of failed scenarios (capped at 125 to stay clear of shell codes).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "ddl/analysis/bench_json.h"
#include "ddl/analysis/parallel.h"
#include "ddl/scenario/registry.h"
#include "ddl/scenario/runner.h"

namespace {

void print_usage(std::ostream& os) {
  os << "usage: ddl_scenario_runner [--suite NAME] [--filter SUBSTR]\n"
        "                           [--jobs N] [--out FILE]\n"
        "                           [--health-out FILE] [--list]\n"
        "\n"
        "  --suite NAME      suite to run (default: smoke)\n"
        "  --filter SUBSTR   keep only scenarios whose name contains SUBSTR\n"
        "  --jobs N          worker threads (default: DDL_THREADS or "
        "hardware)\n"
        "  --out FILE        write the JSONL stream to FILE instead of stdout\n"
        "  --health-out FILE write supervisor health events (one JSONL record\n"
        "                    per event, spec order) to FILE\n"
        "  --list            list suites and their scenarios, then exit\n";
}

void list_suites(std::ostream& os) {
  const auto& registry = ddl::scenario::ScenarioRegistry::builtin();
  for (const std::string& suite : registry.suite_names()) {
    const auto specs = registry.expand(suite);
    os << suite << " (" << specs.size() << " scenarios)\n";
    for (const auto& spec : specs) {
      os << "  " << spec.name << "\n";
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string suite = "smoke";
  std::string filter;
  std::string out_path;
  std::string health_out_path;
  std::size_t jobs = 0;
  bool list = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "error: " << arg << " needs a value\n";
        std::exit(64);
      }
      return argv[++i];
    };
    if (arg == "--suite") {
      suite = value();
    } else if (arg == "--filter") {
      filter = value();
    } else if (arg == "--jobs") {
      jobs = static_cast<std::size_t>(std::stoul(value()));
    } else if (arg == "--out") {
      out_path = value();
    } else if (arg == "--health-out") {
      health_out_path = value();
    } else if (arg == "--list") {
      list = true;
    } else if (arg == "--help" || arg == "-h") {
      print_usage(std::cout);
      return 0;
    } else {
      std::cerr << "error: unknown option '" << arg << "'\n";
      print_usage(std::cerr);
      return 64;
    }
  }

  if (list) {
    list_suites(std::cout);
    return 0;
  }

  const auto& registry = ddl::scenario::ScenarioRegistry::builtin();
  if (!registry.has_suite(suite)) {
    std::cerr << "error: unknown suite '" << suite << "' (--list shows them)\n";
    return 64;
  }
  const auto specs = registry.expand_filtered(suite, filter);
  if (specs.empty()) {
    std::cerr << "error: filter '" << filter << "' matches nothing in '"
              << suite << "'\n";
    return 64;
  }

  ddl::analysis::WallTimer timer;
  ddl::scenario::ScenarioRunner runner(jobs);
  const auto results = runner.run(specs);
  const double wall_ms = timer.elapsed_ms();
  const auto summary = ddl::scenario::summarize(results);

  // The per-scenario stream: stdout by default, --out FILE otherwise.
  const std::string stream = ddl::scenario::ScenarioRunner::jsonl(results);
  if (out_path.empty()) {
    std::cout << stream;
  } else {
    std::ofstream out(out_path);
    if (!out) {
      std::cerr << "error: cannot write '" << out_path << "'\n";
      return 66;
    }
    out << stream;
  }

  // The health-event stream (recovery suites): same determinism contract as
  // the result stream -- spec order, then per-supervisor event order.
  if (!health_out_path.empty()) {
    std::ofstream health(health_out_path);
    if (!health) {
      std::cerr << "error: cannot write '" << health_out_path << "'\n";
      return 66;
    }
    health << ddl::scenario::ScenarioRunner::health_jsonl(results);
  }

  // The aggregate record is a BenchReport, so it (and only it) carries
  // schema_version, threads and wall time.
  ddl::analysis::BenchReport report("scenario_suite_" + suite);
  report.set("threads",
             static_cast<std::uint64_t>(
                 jobs ? jobs : ddl::analysis::default_thread_count()));
  report.set("suite", suite);
  if (!filter.empty()) {
    report.set("filter", filter);
  }
  report.set("scenarios", static_cast<std::uint64_t>(summary.total));
  report.set("passed", static_cast<std::uint64_t>(summary.passed));
  report.set("failed", static_cast<std::uint64_t>(summary.total - summary.passed));
  report.set("locked", static_cast<std::uint64_t>(summary.locked));
  std::size_t health_events = 0;
  for (const auto& result : results) {
    health_events += result.health.size();
  }
  report.set("health_events", static_cast<std::uint64_t>(health_events));
  // Kernel execution counters summed across the suite (zero for purely
  // behavioral scenarios; see ScenarioResult::kernel).
  report.set("kernel_signal_events", summary.kernel.signal_events);
  report.set("kernel_tasks", summary.kernel.tasks);
  report.set("kernel_cancelled_inertial", summary.kernel.cancelled_inertial);
  report.set("kernel_executed_events", summary.kernel.total());
  report.set("wall_ms", wall_ms);
  for (const auto& [reason, count] : summary.failures) {
    report.set("failures." + reason, static_cast<std::uint64_t>(count));
  }
  for (const auto& [family, counts] : summary.by_family) {
    report.set("family." + family + ".passed",
               static_cast<std::uint64_t>(counts.first));
    report.set("family." + family + ".total",
               static_cast<std::uint64_t>(counts.second));
  }
  // The aggregate stays OUT of the JSONL stream so the artifact is
  // byte-identical for any --jobs value: summary to stderr, plus the
  // standard BENCH_*.json file (DDL_BENCH_DIR) for CI collection.
  std::cerr << report.to_json() << "\n";
  report.write();

  const std::size_t failed = summary.total - summary.passed;
  return static_cast<int>(failed > 125 ? 125 : failed);
}
