// ddl_chaos_proxy: a seeded TCP chaos proxy between ddl_scenario_client
// and ddl_scenario_server.  Every connection relayed through it is
// subjected to a splitmix64-scheduled fault storm -- resets, mid-frame
// truncation, byte fuzzing, duplicated writes, single-byte trickle,
// stalls -- so CI can prove the service endpoints converge to byte-exact
// campaign output through an adversarial network.
//
//   ddl_chaos_proxy --listen-port 0 --upstream-port 45123 --seed 7
//   ddl_chaos_proxy --upstream-port 45123 --profile heavy
//
// Prints one `listening ...` line to stdout once ready (scripts parse the
// ephemeral port from it).  SIGTERM / SIGINT stop the relay and print the
// fault accounting.  Exit status: 0 on clean shutdown, 64 usage error,
// 71 startup failure.
#include <csignal>
#include <iostream>
#include <string>
#include <vector>

#include "ddl/scenario/cli.h"
#include "ddl/service/chaos_proxy.h"

namespace {

using namespace ddl;

struct ProxyOptions {
  service::ChaosProxyConfig config;
  bool help = false;
  std::string error;
  bool ok() const { return error.empty(); }
};

std::string usage() {
  return
      "usage: ddl_chaos_proxy [options]\n"
      "  --listen-port N     loopback listen port (default 0 = ephemeral)\n"
      "  --upstream-port N   the real server's port (required)\n"
      "  --upstream-host A   the real server's address (default 127.0.0.1)\n"
      "  --seed N            fault-schedule seed (default 1)\n"
      "  --profile NAME      fault mix: clean (forward only), light,\n"
      "                      default, heavy (roughly 2x default rates)\n"
      "  --reset N           per-chunk connection-reset permille\n"
      "  --truncate N        per-chunk mid-frame truncation permille\n"
      "  --fuzz N            per-chunk byte-fuzzing permille\n"
      "  --duplicate N       per-chunk duplicated-write permille\n"
      "  --trickle N         per-chunk slowloris-trickle permille\n"
      "  --stall N           per-chunk stall permille\n"
      "  --stall-ms N        stall duration (default 120)\n"
      "  --chunk-bytes N     relay read size (default 2048); smaller\n"
      "                      chunks mean more fault decision points\n"
      "  --help              this text\n";
}

void apply_profile(service::ChaosProxyConfig& config,
                   const std::string& name, std::string& error) {
  if (name == "default") {
    return;
  }
  if (name == "clean") {
    config.p_reset_permille = 0;
    config.p_truncate_permille = 0;
    config.p_fuzz_permille = 0;
    config.p_duplicate_permille = 0;
    config.p_trickle_permille = 0;
    config.p_stall_permille = 0;
    config.p_split_permille = 0;
    return;
  }
  if (name == "light") {
    config.p_reset_permille = 3;
    config.p_truncate_permille = 5;
    config.p_fuzz_permille = 6;
    config.p_duplicate_permille = 4;
    config.p_trickle_permille = 4;
    config.p_stall_permille = 4;
    return;
  }
  if (name == "heavy") {
    config.p_reset_permille = 16;
    config.p_truncate_permille = 24;
    config.p_fuzz_permille = 30;
    config.p_duplicate_permille = 20;
    config.p_trickle_permille = 20;
    config.p_stall_permille = 20;
    return;
  }
  error = "--profile: unknown profile '" + name + "'";
}

ProxyOptions parse_args(const std::vector<std::string>& args) {
  ProxyOptions options;
  auto value_of = [&](std::size_t& i, const char* flag) -> const std::string* {
    if (i + 1 >= args.size()) {
      options.error = std::string(flag) + " needs a value";
      return nullptr;
    }
    return &args[++i];
  };
  auto u64_of = [&](std::size_t& i, const char* flag, std::uint64_t& out) {
    const std::string* text = value_of(i, flag);
    if (text != nullptr && !scenario::parse_u64(*text, out)) {
      options.error = std::string(flag) + ": '" + *text +
                      "' is not an unsigned integer";
    }
  };
  auto permille_of = [&](std::size_t& i, const char* flag,
                         std::uint32_t& out) {
    std::uint64_t number = 0;
    u64_of(i, flag, number);
    if (options.ok() && number > 1000) {
      options.error = std::string(flag) + ": " + std::to_string(number) +
                      " exceeds 1000 permille";
    }
    out = static_cast<std::uint32_t>(number);
  };
  for (std::size_t i = 0; i < args.size() && options.ok(); ++i) {
    const std::string& arg = args[i];
    std::uint64_t number = 0;
    if (arg == "--help" || arg == "-h") {
      options.help = true;
    } else if (arg == "--listen-port") {
      u64_of(i, "--listen-port", number);
      options.config.listen_port = static_cast<int>(number);
    } else if (arg == "--upstream-port") {
      u64_of(i, "--upstream-port", number);
      options.config.upstream_port = static_cast<int>(number);
    } else if (arg == "--upstream-host") {
      if (const std::string* text = value_of(i, "--upstream-host")) {
        options.config.upstream_host = *text;
      }
    } else if (arg == "--seed") {
      u64_of(i, "--seed", options.config.seed);
    } else if (arg == "--profile") {
      if (const std::string* text = value_of(i, "--profile")) {
        apply_profile(options.config, *text, options.error);
      }
    } else if (arg == "--reset") {
      permille_of(i, "--reset", options.config.p_reset_permille);
    } else if (arg == "--truncate") {
      permille_of(i, "--truncate", options.config.p_truncate_permille);
    } else if (arg == "--fuzz") {
      permille_of(i, "--fuzz", options.config.p_fuzz_permille);
    } else if (arg == "--duplicate") {
      permille_of(i, "--duplicate", options.config.p_duplicate_permille);
    } else if (arg == "--trickle") {
      permille_of(i, "--trickle", options.config.p_trickle_permille);
    } else if (arg == "--stall") {
      permille_of(i, "--stall", options.config.p_stall_permille);
    } else if (arg == "--stall-ms") {
      u64_of(i, "--stall-ms", options.config.stall_ms);
    } else if (arg == "--chunk-bytes") {
      u64_of(i, "--chunk-bytes", number);
      if (options.ok() && number == 0) {
        options.error = "--chunk-bytes: must be positive";
      }
      options.config.chunk_bytes = static_cast<std::size_t>(number);
    } else {
      options.error = "unknown flag '" + arg + "'";
    }
  }
  if (options.ok() && options.config.upstream_port == 0) {
    options.error = "--upstream-port is required";
  }
  return options;
}

volatile std::sig_atomic_t g_stop = 0;

void on_signal(int) { g_stop = 1; }

}  // namespace

int main(int argc, char** argv) {
  const ProxyOptions options = parse_args({argv + 1, argv + argc});
  if (!options.ok()) {
    std::cerr << "error: " << options.error << "\n" << usage();
    return 64;
  }
  if (options.help) {
    std::cout << usage();
    return 0;
  }

  service::ChaosProxy proxy(options.config);
  std::string error;
  if (!proxy.start(&error)) {
    std::cerr << "error: " << error << "\n";
    return 71;
  }
  std::signal(SIGTERM, on_signal);
  std::signal(SIGINT, on_signal);
  std::signal(SIGPIPE, SIG_IGN);

  std::cout << "listening tcp=" << proxy.listen_port()
            << " upstream=" << options.config.upstream_host << ":"
            << options.config.upstream_port
            << " seed=" << options.config.seed << std::endl;

  while (g_stop == 0) {
    // The relay runs on its own thread; the main thread only waits for a
    // signal.  pause() returns on any handled signal.
    ::pause();
  }
  proxy.stop();

  const service::ChaosProxyStats stats = proxy.stats();
  std::cerr << "chaos: connections=" << stats.connections
            << " resets=" << stats.resets
            << " truncations=" << stats.truncations
            << " fuzzed=" << stats.fuzzed_chunks
            << " duplicated=" << stats.duplicated_chunks
            << " trickled=" << stats.trickled_chunks
            << " stalls=" << stats.stalls
            << " split=" << stats.split_chunks
            << " forwarded_bytes=" << stats.forwarded_bytes << "\n";
  return 0;
}
