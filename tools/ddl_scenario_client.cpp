// ddl_scenario_client: submit a campaign to a running ddl_scenario_server
// and reassemble the streamed rows into the exact JSONL document the
// one-shot runner would have produced.
//
//   ddl_scenario_client --port 45123 --job nightly --suite regression
//   ddl_scenario_client --unix /tmp/ddl.sock --suite smoke --out r.jsonl
//   ddl_scenario_client --port 45123 --job repro --replay bundle.json
//   ddl_scenario_client --port 45123 --job nightly --cancel
//
// Resilience rides on ResilientScenarioClient: a `backpressure` frame or
// a dropped connection (reset, truncation, a fuzz-poisoned frame reader)
// is answered by reconnecting with exponential backoff and resubmitting
// the same job -- the server replays committed rows byte-exactly
// (idempotent job identity), so a kill -9 of the server mid-campaign or
// a chaos-proxy storm between the endpoints costs nothing but time.
// While blocked waiting, the client pings every --heartbeat-ms so the
// server's dead-peer timeout never reaps a healthy connection.
//
// Exit status mirrors the runner: the number of failed scenarios (capped
// at 125), 64 usage error, 66 file error, 69 service unavailable
// (attempts exhausted), 70 job cancelled, and for --replay 0 when the
// expected verdict reproduced / 1 when it did not.
#include <iostream>
#include <string>
#include <vector>

#include "ddl/analysis/bench_json.h"
#include "ddl/scenario/chaos.h"
#include "ddl/scenario/cli.h"
#include "ddl/scenario/journal.h"
#include "ddl/scenario/registry.h"
#include "ddl/service/client.h"

namespace {

using namespace ddl;

struct ClientOptions {
  service::ResilientClientConfig config;
  std::string job_tag = "job";
  std::string suite = "smoke";
  std::string filter;
  std::string replay_path;  ///< --replay: run a bundle instead of a suite.
  bool cancel = false;      ///< --cancel: tear the tagged job down.
  std::string inject_crash_kind;   ///< --inject-crash: segv|abort|oom|spin.
  std::string inject_crash_match;  ///< ... @SUBSTR scenario selector.
  std::string out_path;
  std::string health_out_path;
  bool help = false;
  std::string error;
  bool ok() const { return error.empty(); }
};

std::string usage() {
  return
      "usage: ddl_scenario_client [options]\n"
      "  --port N          server TCP port (loopback)\n"
      "  --host ADDR       server address (default 127.0.0.1)\n"
      "  --unix PATH       connect over a Unix-domain socket instead\n"
      "  --name NAME       client identity (default 'client'; part of the\n"
      "                    job id, so reconnects resume the same job)\n"
      "  --job TAG         job tag (default 'job')\n"
      "  --suite NAME      registry suite to run (default 'smoke')\n"
      "  --filter SUBSTR   keep only scenarios whose name contains this\n"
      "  --replay FILE     run a chaos replay bundle instead of a suite;\n"
      "                    exit 0 iff the expected verdict reproduces\n"
      "  --cancel          cancel the job tagged --job instead of running\n"
      "  --out FILE        write the result JSONL here (default stdout)\n"
      "  --health-out FILE write the health-event JSONL here\n"
      "  --heartbeat-ms N  ping cadence while waiting (default 1000;\n"
      "                    keep well under the server's\n"
      "                    --dead-peer-timeout-ms; 0 disables)\n"
      "  --recv-timeout-ms N\n"
      "                    give up after N ms of total server silence\n"
      "                    (default 30000, 0 waits forever)\n"
      "  --retry-ms N      initial reconnect backoff, doubling per failure\n"
      "                    (default 25, capped at 1000)\n"
      "  --attempts N      transport failures tolerated before exit 69\n"
      "                    (default 150)\n"
      "  --inject-crash KIND[@SUBSTR]\n"
      "                    test hook: submit the suite with the selected\n"
      "                    scenarios marked to crash inside the server's\n"
      "                    sandbox worker.  KIND is segv|abort|oom|spin;\n"
      "                    @SUBSTR selects every scenario whose name\n"
      "                    contains SUBSTR (default: the first scenario)\n"
      "  --help            this text\n";
}

ClientOptions parse_args(const std::vector<std::string>& args) {
  ClientOptions options;
  // Daemon-pairing defaults: ping every second, declare the server dead
  // after 30 s of total silence.  The library defaults keep both off.
  options.config.base.heartbeat_ms = 1000;
  options.config.base.recv_timeout_ms = 30'000;
  options.config.max_attempts = 150;
  auto value_of = [&](std::size_t& i, const char* flag) -> const std::string* {
    if (i + 1 >= args.size()) {
      options.error = std::string(flag) + " needs a value";
      return nullptr;
    }
    return &args[++i];
  };
  auto u64_of = [&](std::size_t& i, const char* flag, std::uint64_t& out) {
    const std::string* text = value_of(i, flag);
    if (text != nullptr && !scenario::parse_u64(*text, out)) {
      options.error = std::string(flag) + ": bad value '" + *text + "'";
    }
  };
  for (std::size_t i = 0; i < args.size() && options.ok(); ++i) {
    const std::string& arg = args[i];
    std::uint64_t number = 0;
    if (arg == "--help" || arg == "-h") {
      options.help = true;
    } else if (arg == "--port") {
      u64_of(i, "--port", number);
      if (options.ok() && number > 65535) {
        options.error = "--port: " + std::to_string(number) + " out of range";
      }
      options.config.base.tcp_port = static_cast<int>(number);
    } else if (arg == "--host") {
      if (const std::string* text = value_of(i, "--host")) {
        options.config.base.host = *text;
      }
    } else if (arg == "--unix") {
      if (const std::string* text = value_of(i, "--unix")) {
        options.config.base.unix_path = *text;
      }
    } else if (arg == "--name") {
      if (const std::string* text = value_of(i, "--name")) {
        options.config.base.name = *text;
      }
    } else if (arg == "--job") {
      if (const std::string* text = value_of(i, "--job")) {
        options.job_tag = *text;
      }
    } else if (arg == "--suite") {
      if (const std::string* text = value_of(i, "--suite")) {
        options.suite = *text;
      }
    } else if (arg == "--filter") {
      if (const std::string* text = value_of(i, "--filter")) {
        options.filter = *text;
      }
    } else if (arg == "--replay") {
      if (const std::string* text = value_of(i, "--replay")) {
        options.replay_path = *text;
      }
    } else if (arg == "--inject-crash") {
      if (const std::string* text = value_of(i, "--inject-crash")) {
        const std::size_t at = text->find('@');
        options.inject_crash_kind = text->substr(0, at);
        options.inject_crash_match =
            at == std::string::npos ? "" : text->substr(at + 1);
        if (options.inject_crash_kind != "segv" &&
            options.inject_crash_kind != "abort" &&
            options.inject_crash_kind != "oom" &&
            options.inject_crash_kind != "spin") {
          options.error = "--inject-crash: '" + options.inject_crash_kind +
                          "' is not one of segv|abort|oom|spin";
        }
      }
    } else if (arg == "--cancel") {
      options.cancel = true;
    } else if (arg == "--out") {
      if (const std::string* text = value_of(i, "--out")) {
        options.out_path = *text;
      }
    } else if (arg == "--health-out") {
      if (const std::string* text = value_of(i, "--health-out")) {
        options.health_out_path = *text;
      }
    } else if (arg == "--heartbeat-ms") {
      u64_of(i, "--heartbeat-ms", options.config.base.heartbeat_ms);
    } else if (arg == "--recv-timeout-ms") {
      u64_of(i, "--recv-timeout-ms", options.config.base.recv_timeout_ms);
    } else if (arg == "--retry-ms") {
      u64_of(i, "--retry-ms", options.config.initial_backoff_ms);
      if (options.ok() && options.config.initial_backoff_ms == 0) {
        options.config.initial_backoff_ms = 1;
      }
    } else if (arg == "--attempts") {
      u64_of(i, "--attempts", number);
      if (options.ok() && number == 0) {
        options.error = "--attempts: must be positive";
      }
      options.config.max_attempts = static_cast<std::size_t>(number);
    } else {
      options.error = "unknown flag '" + arg + "'";
    }
  }
  if (options.ok() && options.config.base.unix_path.empty() &&
      options.config.base.tcp_port == 0) {
    options.error = "need --port or --unix to reach a server";
  }
  if (options.ok() && options.cancel && !options.replay_path.empty()) {
    options.error = "--cancel and --replay are mutually exclusive";
  }
  return options;
}

/// --cancel: connect, request the teardown, wait for the terminal frame.
int run_cancel(const ClientOptions& options) {
  service::ScenarioClient client(options.config.base);
  std::string error;
  if (!client.connect(&error)) {
    std::cerr << "connect: " << error << "\n";
    return 69;
  }
  if (!client.cancel(options.job_tag)) {
    std::cerr << "error: cancel send failed\n";
    return 69;
  }
  // The terminal frame is either `cancelled` (teardown complete) or an
  // `error` naming why (unknown_job / already_done).
  for (;;) {
    const auto fields = client.next_frame();
    if (!fields) {
      std::cerr << "error: connection closed before the cancel reply\n";
      return 69;
    }
    const auto frame_it = fields->find("frame");
    const std::string type =
        frame_it == fields->end() ? "" : frame_it->second;
    if (type == "cancelled") {
      const auto completed = fields->find("completed");
      const auto total = fields->find("total");
      std::cerr << "cancelled: completed="
                << (completed == fields->end() ? "?" : completed->second)
                << "/" << (total == fields->end() ? "?" : total->second)
                << "\n";
      client.bye();
      return 0;
    }
    if (type == "error") {
      const auto code = fields->find("code");
      const auto detail = fields->find("detail");
      std::cerr << "error: "
                << (code == fields->end() ? "?" : code->second) << ": "
                << (detail == fields->end() ? "" : detail->second) << "\n";
      return 64;
    }
    // result / progress / heartbeat frames keep streaming while the
    // in-flight scenarios drain; skip them.
  }
}

}  // namespace

int main(int argc, char** argv) {
  const ClientOptions options = parse_args({argv + 1, argv + argc});
  if (!options.ok()) {
    std::cerr << "error: " << options.error << "\n" << usage();
    return 64;
  }
  if (options.help) {
    std::cout << usage();
    return 0;
  }
  if (options.cancel) {
    return run_cancel(options);
  }

  service::ResilientScenarioClient client(options.config);
  service::ScenarioClient::JobOutcome outcome;
  if (!options.replay_path.empty()) {
    scenario::ReplayBundle bundle;
    try {
      bundle = scenario::parse_replay_bundle(
          scenario::read_file(options.replay_path));
    } catch (const std::exception& e) {
      std::cerr << "error: " << options.replay_path << ": " << e.what()
                << "\n";
      return 66;
    }
    outcome = client.run_replay(options.job_tag, bundle);
  } else if (!options.inject_crash_kind.empty()) {
    // Test hook: expand the suite locally so the crash marker travels in
    // the submitted specs; the server's sandbox supervisor classifies the
    // worker death and the rest of the campaign completes normally.
    std::vector<scenario::ScenarioSpec> specs;
    try {
      specs = scenario::ScenarioRegistry::builtin().expand_filtered(
          options.suite, options.filter);
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what() << "\n";
      return 64;
    }
    if (specs.empty()) {
      std::cerr << "error: suite '" << options.suite
                << "' expands to no scenarios\n";
      return 64;
    }
    if (options.inject_crash_match.empty()) {
      specs.front().debug_crash = options.inject_crash_kind;
    } else {
      for (auto& spec : specs) {
        if (spec.name.find(options.inject_crash_match) != std::string::npos) {
          spec.debug_crash = options.inject_crash_kind;
        }
      }
    }
    outcome = client.run_specs(options.job_tag, specs);
  } else {
    outcome = client.run_suite(options.job_tag, options.suite, options.filter);
  }

  if (outcome.cancelled) {
    std::cerr << "error: job '" << options.job_tag << "' was cancelled\n";
    return 70;
  }
  if (!outcome.done) {
    if (outcome.error_code == "connect_failed" ||
        outcome.error_code == "disconnected" ||
        outcome.error_code == "backpressure" ||
        outcome.error_code == "bad_frame" ||
        outcome.error_code == "dead_peer" ||
        outcome.error_code == "partial_frame_timeout") {
      std::cerr << "error: service unavailable after "
                << options.config.max_attempts << " attempts ("
                << outcome.error_code << ": " << outcome.error_detail
                << ")\n";
      return 69;
    }
    std::cerr << "error: " << outcome.error_code << ": "
              << outcome.error_detail << "\n";
    return 64;
  }

  try {
    if (options.out_path.empty()) {
      std::cout << outcome.jsonl();
    } else {
      analysis::write_file_atomic(options.out_path, outcome.jsonl());
    }
    if (!options.health_out_path.empty()) {
      analysis::write_file_atomic(options.health_out_path,
                                  outcome.health_jsonl());
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 66;
  }

  std::cerr << "job done: scenarios=" << outcome.scenarios
            << " passed=" << outcome.passed << " failed=" << outcome.failed
            << " executed=" << outcome.executed
            << " resumed=" << outcome.resumed
            << " reconnects=" << client.reconnects() << "\n";
  if (!options.replay_path.empty()) {
    std::cerr << (outcome.reproduced ? "reproduced: the expected verdict "
                                       "reproduced\n"
                                     : "NOT reproduced: the scenario did not "
                                       "match the bundle's expectation\n");
    return outcome.reproduced ? 0 : 1;
  }
  return static_cast<int>(outcome.failed > 125 ? 125 : outcome.failed);
}
