// ddl_scenario_client: submit a campaign to a running ddl_scenario_server
// and reassemble the streamed rows into the exact JSONL document the
// one-shot runner would have produced.
//
//   ddl_scenario_client --port 45123 --job nightly --suite regression
//   ddl_scenario_client --unix /tmp/ddl.sock --suite smoke --out r.jsonl
//
// Resilience is the client's job in this protocol: a `backpressure` frame
// or a dropped connection is answered by sleeping and resubmitting the
// same job -- the server replays committed rows byte-exactly (idempotent
// job identity), so a kill -9 of the server mid-campaign costs nothing but
// time once it restarts.  Exit status mirrors the runner: the number of
// failed scenarios (capped at 125), 64 usage error, 66 file error,
// 69 service unavailable (retries exhausted).
#include <chrono>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "ddl/analysis/bench_json.h"
#include "ddl/scenario/cli.h"
#include "ddl/service/client.h"

namespace {

using namespace ddl;

struct ClientOptions {
  service::ClientConfig config;
  std::string job_tag = "job";
  std::string suite = "smoke";
  std::string filter;
  std::string out_path;
  std::string health_out_path;
  std::uint64_t retry_ms = 200;  ///< Backpressure / reconnect backoff.
  std::uint64_t attempts = 150;  ///< Connect+submit attempts before 69.
  bool help = false;
  std::string error;
  bool ok() const { return error.empty(); }
};

std::string usage() {
  return
      "usage: ddl_scenario_client [options]\n"
      "  --port N          server TCP port (loopback)\n"
      "  --host ADDR       server address (default 127.0.0.1)\n"
      "  --unix PATH       connect over a Unix-domain socket instead\n"
      "  --name NAME       client identity (default 'client'; part of the\n"
      "                    job id, so reconnects resume the same job)\n"
      "  --job TAG         job tag (default 'job')\n"
      "  --suite NAME      registry suite to run (default 'smoke')\n"
      "  --filter SUBSTR   keep only scenarios whose name contains this\n"
      "  --out FILE        write the result JSONL here (default stdout)\n"
      "  --health-out FILE write the health-event JSONL here\n"
      "  --retry-ms N      backoff between retries (default 200)\n"
      "  --attempts N      connect/submit attempts before giving up (150)\n"
      "  --help            this text\n";
}

ClientOptions parse_args(const std::vector<std::string>& args) {
  ClientOptions options;
  auto value_of = [&](std::size_t& i, const char* flag) -> const std::string* {
    if (i + 1 >= args.size()) {
      options.error = std::string(flag) + " needs a value";
      return nullptr;
    }
    return &args[++i];
  };
  for (std::size_t i = 0; i < args.size() && options.ok(); ++i) {
    const std::string& arg = args[i];
    std::uint64_t number = 0;
    if (arg == "--help" || arg == "-h") {
      options.help = true;
    } else if (arg == "--port") {
      const std::string* text = value_of(i, "--port");
      if (text != nullptr &&
          (!scenario::parse_u64(*text, number) || number > 65535)) {
        options.error = "--port: bad value '" + *text + "'";
      }
      options.config.tcp_port = static_cast<int>(number);
    } else if (arg == "--host") {
      if (const std::string* text = value_of(i, "--host")) {
        options.config.host = *text;
      }
    } else if (arg == "--unix") {
      if (const std::string* text = value_of(i, "--unix")) {
        options.config.unix_path = *text;
      }
    } else if (arg == "--name") {
      if (const std::string* text = value_of(i, "--name")) {
        options.config.name = *text;
      }
    } else if (arg == "--job") {
      if (const std::string* text = value_of(i, "--job")) {
        options.job_tag = *text;
      }
    } else if (arg == "--suite") {
      if (const std::string* text = value_of(i, "--suite")) {
        options.suite = *text;
      }
    } else if (arg == "--filter") {
      if (const std::string* text = value_of(i, "--filter")) {
        options.filter = *text;
      }
    } else if (arg == "--out") {
      if (const std::string* text = value_of(i, "--out")) {
        options.out_path = *text;
      }
    } else if (arg == "--health-out") {
      if (const std::string* text = value_of(i, "--health-out")) {
        options.health_out_path = *text;
      }
    } else if (arg == "--retry-ms") {
      const std::string* text = value_of(i, "--retry-ms");
      if (text != nullptr && !scenario::parse_u64(*text, options.retry_ms)) {
        options.error = "--retry-ms: bad value '" + *text + "'";
      }
    } else if (arg == "--attempts") {
      const std::string* text = value_of(i, "--attempts");
      if (text != nullptr &&
          (!scenario::parse_u64(*text, options.attempts) ||
           options.attempts == 0)) {
        options.error = "--attempts: bad value '" + *text + "'";
      }
    } else {
      options.error = "unknown flag '" + arg + "'";
    }
  }
  if (options.ok() && options.config.unix_path.empty() &&
      options.config.tcp_port == 0) {
    options.error = "need --port or --unix to reach a server";
  }
  return options;
}

}  // namespace

int main(int argc, char** argv) {
  const ClientOptions options = parse_args({argv + 1, argv + argc});
  if (!options.ok()) {
    std::cerr << "error: " << options.error << "\n" << usage();
    return 64;
  }
  if (options.help) {
    std::cout << usage();
    return 0;
  }

  const auto nap = [&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(options.retry_ms));
  };

  service::ScenarioClient::JobOutcome outcome;
  bool finished = false;
  for (std::uint64_t attempt = 0; attempt < options.attempts && !finished;
       ++attempt) {
    service::ScenarioClient client(options.config);
    std::string error;
    if (!client.connect(&error)) {
      std::cerr << "connect (attempt " << attempt + 1 << "): " << error
                << "\n";
      nap();
      continue;
    }
    const auto submission =
        client.submit_suite(options.job_tag, options.suite, options.filter);
    if (submission.backpressure) {
      std::cerr << "backpressure: retrying in "
                << (submission.retry_ms ? submission.retry_ms
                                        : options.retry_ms)
                << " ms\n";
      std::this_thread::sleep_for(std::chrono::milliseconds(
          submission.retry_ms ? submission.retry_ms : options.retry_ms));
      continue;
    }
    if (!submission.accepted) {
      if (submission.error_code == "disconnected") {
        nap();  // Server went away between connect and reply; retry.
        continue;
      }
      // A structured rejection (invalid spec, unknown suite) is final.
      std::cerr << "error: " << submission.error_code << ": "
                << submission.error_detail << "\n";
      return 64;
    }
    if (submission.resumed) {
      std::cerr << "resumed job " << submission.job_id << " ("
                << submission.scenarios << " scenarios)\n";
    }
    outcome = client.wait(submission.job_id);
    if (outcome.done) {
      finished = true;
      client.bye();
      break;
    }
    std::cerr << "stream dropped (" << outcome.error_code
              << "); reconnecting\n";
    nap();
  }
  if (!finished) {
    std::cerr << "error: service unavailable after " << options.attempts
              << " attempts\n";
    return 69;
  }

  try {
    if (options.out_path.empty()) {
      std::cout << outcome.jsonl();
    } else {
      analysis::write_file_atomic(options.out_path, outcome.jsonl());
    }
    if (!options.health_out_path.empty()) {
      analysis::write_file_atomic(options.health_out_path,
                                  outcome.health_jsonl());
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 66;
  }

  std::cerr << "job done: scenarios=" << outcome.scenarios
            << " passed=" << outcome.passed << " failed=" << outcome.failed
            << " executed=" << outcome.executed
            << " resumed=" << outcome.resumed << "\n";
  return static_cast<int>(outcome.failed > 125 ? 125 : outcome.failed);
}
