// ddl_scenario_server: the campaign service daemon.  Binds a loopback TCP
// port (and optionally a Unix-domain socket), accepts framed scenario /
// chaos submissions from ddl_scenario_client, runs them on the
// watchdog-isolated worker pool and streams results back -- journaling
// every completed scenario under --state-dir so a killed server resumes
// exactly where it stopped (see DESIGN.md "Campaign service").
//
//   ddl_scenario_server --port 0 --state-dir runs/service --workers 4
//   ddl_scenario_server --unix /tmp/ddl.sock --state-dir runs/service
//
// Prints one `listening ...` line to stdout once ready (scripts parse the
// ephemeral port from it).  SIGTERM / SIGINT trigger the graceful
// shutdown: in-flight scenarios finish and journal, checkpoint manifests
// flush, sessions close; queued work stays pending for the next start.
// Exit status: 0 on clean shutdown, 64 usage error, 71 startup failure.
#include <csignal>
#include <iostream>
#include <string>
#include <vector>

#include "ddl/scenario/cli.h"
#include "ddl/service/server.h"

namespace {

using namespace ddl;

struct ServerOptions {
  service::ServiceConfig config;
  bool help = false;
  std::string error;
  bool ok() const { return error.empty(); }
};

std::string usage() {
  return
      "usage: ddl_scenario_server [options]\n"
      "  --port N           loopback TCP port (default 0 = ephemeral)\n"
      "  --no-tcp           disable the TCP listener\n"
      "  --unix PATH        also listen on a Unix-domain socket\n"
      "  --state-dir DIR    journal every job under DIR (resume on restart)\n"
      "  --workers N        scenario worker threads (default 2)\n"
      "  --max-inflight N   per-client in-flight scenario quota (default 4)\n"
      "  --max-jobs N       per-client pending-job quota (default 4)\n"
      "  --heartbeat-ms N   idle heartbeat interval (default 1000)\n"
      "  --dead-peer-timeout-ms N\n"
      "                     close a session silent for N ms (default 30000,\n"
      "                     0 disables).  Must exceed the client's\n"
      "                     --heartbeat-ms ping cadence by a healthy margin\n"
      "  --partial-frame-timeout-ms N\n"
      "                     close a session stuck mid-frame for N ms -- the\n"
      "                     slowloris defense (default 10000, 0 disables)\n"
      "  --max-outbox-mb N  per-session outbox cap before disconnect\n"
      "                     (default 32; the job continues as an orphan)\n"
      "  --timeout-ms N     watchdog deadline per attempt (0 = per-spec)\n"
      "  --retries N        extra attempts for timed-out scenarios\n"
      "  --isolation MODE   where worker attempts run: 'process' (default;\n"
      "                     fork()ed sandbox workers -- a crashing scenario\n"
      "                     becomes a structured error row and the daemon\n"
      "                     survives) or 'thread' (in-process watchdogs)\n"
      "  --mem-limit-mb N   RLIMIT_AS cap per sandbox worker, in MiB\n"
      "                     (process isolation only; 0 = unlimited)\n"
      "  --cpu-limit-s N    RLIMIT_CPU cap per sandbox worker, in seconds\n"
      "                     (process isolation only; 0 = unlimited)\n"
      "  --help             this text\n";
}

ServerOptions parse_args(const std::vector<std::string>& args) {
  ServerOptions options;
  // The daemon defaults differ from the library's (which keep timeouts
  // off so embedded/test servers never reap a slow debugger session):
  // a long-running daemon wants dead-peer and slowloris defenses on.
  options.config.dead_peer_timeout_ms = 30'000;
  options.config.partial_frame_timeout_ms = 10'000;
  auto value_of = [&](std::size_t& i, const char* flag) -> const std::string* {
    if (i + 1 >= args.size()) {
      options.error = std::string(flag) + " needs a value";
      return nullptr;
    }
    return &args[++i];
  };
  auto u64_of = [&](std::size_t& i, const char* flag, std::uint64_t& out) {
    const std::string* text = value_of(i, flag);
    if (text != nullptr && !scenario::parse_u64(*text, out)) {
      options.error = std::string(flag) + ": '" + *text +
                      "' is not an unsigned integer";
    }
  };
  for (std::size_t i = 0; i < args.size() && options.ok(); ++i) {
    const std::string& arg = args[i];
    std::uint64_t number = 0;
    if (arg == "--help" || arg == "-h") {
      options.help = true;
    } else if (arg == "--port") {
      u64_of(i, "--port", number);
      if (options.ok() && number > 65535) {
        options.error = "--port: " + std::to_string(number) + " out of range";
      }
      options.config.tcp_port = static_cast<int>(number);
    } else if (arg == "--no-tcp") {
      options.config.enable_tcp = false;
    } else if (arg == "--unix") {
      if (const std::string* text = value_of(i, "--unix")) {
        options.config.unix_path = *text;
      }
    } else if (arg == "--state-dir") {
      if (const std::string* text = value_of(i, "--state-dir")) {
        options.config.state_dir = *text;
      }
    } else if (arg == "--workers") {
      u64_of(i, "--workers", number);
      options.config.workers = static_cast<std::size_t>(number);
    } else if (arg == "--max-inflight") {
      u64_of(i, "--max-inflight", number);
      options.config.max_inflight_per_client =
          static_cast<std::size_t>(number);
    } else if (arg == "--max-jobs") {
      u64_of(i, "--max-jobs", number);
      options.config.max_pending_jobs_per_client =
          static_cast<std::size_t>(number);
    } else if (arg == "--heartbeat-ms") {
      u64_of(i, "--heartbeat-ms", options.config.heartbeat_ms);
    } else if (arg == "--dead-peer-timeout-ms") {
      u64_of(i, "--dead-peer-timeout-ms",
             options.config.dead_peer_timeout_ms);
    } else if (arg == "--partial-frame-timeout-ms") {
      u64_of(i, "--partial-frame-timeout-ms",
             options.config.partial_frame_timeout_ms);
    } else if (arg == "--max-outbox-mb") {
      u64_of(i, "--max-outbox-mb", number);
      options.config.max_outbox_bytes =
          static_cast<std::size_t>(number) << 20;
    } else if (arg == "--timeout-ms") {
      u64_of(i, "--timeout-ms", options.config.isolation.timeout_ms);
    } else if (arg == "--retries") {
      u64_of(i, "--retries", number);
      options.config.isolation.max_retries = static_cast<int>(number);
    } else if (arg == "--isolation") {
      if (const std::string* text = value_of(i, "--isolation")) {
        if (*text == "thread") {
          options.config.isolation.mode = scenario::IsolationMode::kThread;
        } else if (*text == "process") {
          options.config.isolation.mode = scenario::IsolationMode::kProcess;
        } else {
          options.error =
              "--isolation: '" + *text + "' is not one of thread|process";
        }
      }
    } else if (arg == "--mem-limit-mb") {
      u64_of(i, "--mem-limit-mb", options.config.isolation.limits.mem_limit_mb);
    } else if (arg == "--cpu-limit-s") {
      u64_of(i, "--cpu-limit-s", options.config.isolation.limits.cpu_limit_s);
    } else {
      options.error = "unknown flag '" + arg + "'";
    }
  }
  if (options.ok() && !options.config.enable_tcp &&
      options.config.unix_path.empty()) {
    options.error = "--no-tcp without --unix leaves nothing to listen on";
  }
  if (options.ok() &&
      options.config.isolation.mode == scenario::IsolationMode::kThread &&
      (options.config.isolation.limits.mem_limit_mb > 0 ||
       options.config.isolation.limits.cpu_limit_s > 0)) {
    options.error = "--mem-limit-mb/--cpu-limit-s require --isolation "
                    "process (thread workers share the daemon's limits)";
  }
  return options;
}

// The signal handler may only touch async-signal-safe state;
// request_stop() is exactly that (atomic store + self-pipe write).
service::ScenarioServer* g_server = nullptr;

void on_signal(int) {
  if (g_server != nullptr) {
    g_server->request_stop();
  }
}

}  // namespace

int main(int argc, char** argv) {
  const ServerOptions options = parse_args({argv + 1, argv + argc});
  if (!options.ok()) {
    std::cerr << "error: " << options.error << "\n" << usage();
    return 64;
  }
  if (options.help) {
    std::cout << usage();
    return 0;
  }

  service::ScenarioServer server(options.config);
  std::string error;
  if (!server.start(&error)) {
    std::cerr << "error: " << error << "\n";
    return 71;
  }
  g_server = &server;
  std::signal(SIGTERM, on_signal);
  std::signal(SIGINT, on_signal);
  std::signal(SIGPIPE, SIG_IGN);

  std::cout << "listening tcp=" << server.tcp_port();
  if (!options.config.unix_path.empty()) {
    std::cout << " unix=" << options.config.unix_path;
  }
  const auto startup = server.stats();
  std::cout << " workers="
            << (options.config.workers == 0 ? 1 : options.config.workers)
            << " recovered=" << startup.jobs_recovered << std::endl;

  server.wait_stopped();
  server.stop();
  g_server = nullptr;

  const service::ServiceStats stats = server.stats();
  std::cerr << "shutdown: sessions=" << stats.sessions_accepted
            << " jobs_accepted=" << stats.jobs_accepted
            << " jobs_recovered=" << stats.jobs_recovered
            << " jobs_completed=" << stats.jobs_completed
            << " executed=" << stats.scenarios_executed
            << " resumed=" << stats.scenarios_resumed
            << " backpressure=" << stats.backpressure_frames
            << " errors=" << stats.error_frames
            << " cancelled=" << stats.jobs_cancelled
            << " timed_out=" << stats.sessions_timed_out
            << " sandbox_crashes=" << stats.sandbox_crashes
            << " workers_respawned=" << stats.workers_respawned
            << " resource_kills=" << stats.resource_kills
            << " workers_lost=" << stats.workers_lost
            << " journal_io_errors=" << stats.journal_io_errors << "\n";
  return 0;
}
