// Tests for technology-node portability (the thesis's RTL-independence
// claim), the ring-oscillator DPWM baseline, and the Markov load generator.
#include <gtest/gtest.h>

#include <cmath>

#include "ddl/control/closed_loop.h"
#include "ddl/core/calibrated_dpwm.h"
#include "ddl/core/design_calculator.h"
#include "ddl/dpwm/ring_oscillator.h"
#include "ddl/synth/delay_line_synth.h"

namespace ddl {
namespace {

using cells::OperatingPoint;
using cells::Technology;

// ---- Technology nodes ----------------------------------------------------

TEST(TechnologyNodes, PresetsScaleAsDocumented) {
  const auto t32 = Technology::i32nm_class();
  const auto t45 = Technology::i45nm_class();
  const auto t22 = Technology::i22nm_class();
  EXPECT_DOUBLE_EQ(t45.typical_delay_ps(cells::CellKind::kBuffer), 40.0 * 1.8);
  EXPECT_DOUBLE_EQ(t22.typical_delay_ps(cells::CellKind::kBuffer), 40.0 * 0.7);
  EXPECT_GT(t45.area_um2(cells::CellKind::kDff),
            t32.area_um2(cells::CellKind::kDff));
  EXPECT_LT(t22.area_um2(cells::CellKind::kDff),
            t32.area_um2(cells::CellKind::kDff));
  EXPECT_LT(t45.mismatch_sigma(), t32.mismatch_sigma());
  EXPECT_GT(t22.mismatch_sigma(), t32.mismatch_sigma());
}

class NodePortability : public ::testing::TestWithParam<int> {};

TEST_P(NodePortability, SameSpecRetargetsAndWorksOnEveryNode) {
  // The section 2.3 claim made executable: the same parameterized design
  // (spec -> calculator -> line -> calibrate -> modulate) just works on a
  // different node with different parameters.
  const Technology tech = GetParam() == 0   ? Technology::i45nm_class()
                          : GetParam() == 1 ? Technology::i32nm_class()
                                            : Technology::i22nm_class();
  core::DesignCalculator calc(tech);
  const core::DesignSpec spec{100.0, 6};
  const auto design = calc.size_proposed(spec);
  ASSERT_TRUE(design.lock_guaranteed);

  core::ProposedDelayLine line(tech, design.line, /*seed=*/6);
  core::ProposedDpwmSystem system(line, spec.clock_period_ps());
  for (const auto op :
       {OperatingPoint::fast_process_only(), OperatingPoint::typical(),
        OperatingPoint::slow_process_only()}) {
    system.set_environment(core::EnvironmentSchedule(op));
    ASSERT_TRUE(system.calibrate().has_value()) << to_string(op.corner);
    EXPECT_NEAR(system.generate(0, design.line.num_cells / 2).duty(), 0.5,
                0.03)
        << to_string(op.corner);
  }
}

INSTANTIATE_TEST_SUITE_P(Nodes, NodePortability, ::testing::Values(0, 1, 2));

TEST(TechnologyNodes, BuffersPerCellAdaptToNodeSpeed) {
  // The calculator re-fits the cell to the node's buffer speed: 45nm's
  // 36 ps fast buffer still needs 2 per 39 ps cell, 22nm's 14 ps needs 3.
  const core::DesignSpec spec{100.0, 6};
  EXPECT_EQ(core::DesignCalculator(Technology::i45nm_class())
                .size_proposed(spec)
                .line.buffers_per_cell,
            2);
  EXPECT_EQ(core::DesignCalculator(Technology::i32nm_class())
                .size_proposed(spec)
                .line.buffers_per_cell,
            2);
  EXPECT_EQ(core::DesignCalculator(Technology::i22nm_class())
                .size_proposed(spec)
                .line.buffers_per_cell,
            3);
}

TEST(TechnologyNodes, AreaShrinksWithTheNode) {
  const core::DesignSpec spec{100.0, 6};
  double previous = 1e18;
  for (const Technology& tech :
       {Technology::i45nm_class(), Technology::i32nm_class(),
        Technology::i22nm_class()}) {
    core::DesignCalculator calc(tech);
    const double area =
        synth::synthesize_proposed(calc.size_proposed(spec).line, tech)
            .total_area_um2();
    EXPECT_LT(area, previous);
    previous = area;
  }
}

// ---- Ring-oscillator DPWM ---------------------------------------------------

TEST(RingDpwm, RejectsBadConfigs) {
  const auto tech = Technology::i32nm_class();
  EXPECT_THROW(dpwm::RingOscillatorDpwm(tech, {3, 2}), std::invalid_argument);
  EXPECT_THROW(dpwm::RingOscillatorDpwm(tech, {64, 0}), std::invalid_argument);
}

TEST(RingDpwm, FrequencyIsSetByTheRingLength) {
  const auto tech = Technology::i32nm_class();
  // 64 stages x 2 buffers x 40 ps = 5.12 ns lap -> 10.24 ns period.
  dpwm::RingOscillatorDpwm ring(tech, {64, 2});
  EXPECT_NEAR(ring.frequency_mhz(OperatingPoint::typical()), 97.66, 0.1);
  EXPECT_EQ(ring.period_ps(), 10'240);
  EXPECT_EQ(ring.bits(), 6);
}

TEST(RingDpwm, FrequencyDriftsWithTheFullCornerSpread) {
  // The architecture's fatal flaw versus the thesis's clocked schemes.
  const auto tech = Technology::i32nm_class();
  dpwm::RingOscillatorDpwm ring(tech, {64, 2});
  const double fast = ring.frequency_mhz(OperatingPoint::fast_process_only());
  const double slow = ring.frequency_mhz(OperatingPoint::slow_process_only());
  EXPECT_NEAR(fast / slow, 4.0, 0.01);
}

TEST(RingDpwm, DutyIsRatiometricAcrossCorners) {
  // The architecture's one virtue: tap/lap ratios cancel the corner, so
  // duty (unlike frequency) is corner-immune without calibration.
  const auto tech = Technology::i32nm_class();
  dpwm::RingOscillatorDpwm ring(tech, {64, 2});
  for (const auto op :
       {OperatingPoint::fast_process_only(), OperatingPoint::typical(),
        OperatingPoint::slow_process_only()}) {
    ring.set_operating_point(op);
    EXPECT_NEAR(ring.generate(0, 31).duty(), 0.5, 0.01)
        << to_string(op.corner);
  }
}

TEST(RingDpwm, DutySweepIsMonotoneAndSpansTheRange) {
  const auto tech = Technology::i32nm_class();
  dpwm::RingOscillatorDpwm ring(tech, {64, 2}, /*seed=*/8);
  double previous = 0.0;
  for (std::uint64_t word = 0; word < 64; ++word) {
    const double duty = ring.generate(0, word).duty();
    EXPECT_GT(duty, previous);
    previous = duty;
  }
  EXPECT_NEAR(previous, 1.0, 0.02);
}

// ---- Markov load ---------------------------------------------------------------

TEST(MarkovLoad, DeterministicForASeed) {
  auto a = control::markov_load(42, 0.1, 1.0);
  auto b = control::markov_load(42, 0.1, 1.0);
  for (std::uint64_t p = 0; p < 500; ++p) {
    EXPECT_DOUBLE_EQ(a(p), b(p));
  }
}

TEST(MarkovLoad, VisitsBothStatesWithPlausibleDutyFactor) {
  auto load = control::markov_load(7, 0.1, 1.0, 0.02, 0.05);
  int bursts = 0;
  for (std::uint64_t p = 0; p < 20'000; ++p) {
    if (load(p) > 0.5) {
      ++bursts;
    }
  }
  // Stationary burst fraction = p_burst / (p_burst + p_idle) ~ 0.286.
  const double fraction = bursts / 20'000.0;
  EXPECT_GT(fraction, 0.15);
  EXPECT_LT(fraction, 0.45);
}

TEST(MarkovLoad, RepeatedQueriesForSamePeriodAreStable) {
  auto load = control::markov_load(3, 0.1, 1.0);
  const double first = load(100);
  EXPECT_DOUBLE_EQ(load(100), first);  // Re-query must not advance state.
}

TEST(MarkovLoad, ClosedLoopSurvivesBurstyWorkload) {
  dpwm::CounterDpwm dpwm(10, 1'048'576);
  analog::BuckParams params;
  params.vin = 3.0;
  control::DigitallyControlledBuck loop(
      analog::BuckConverter(params),
      analog::WindowAdc(analog::WindowAdcParams{1.0, 10e-3, 7}),
      control::PidController(control::PidParams{}, 1023, 341), dpwm);
  loop.run(4000, control::markov_load(11, 0.1, 0.8));
  // Bursty 8x load steps cause real transients on the lightly damped LC,
  // but the loop must keep the long-run average on target and recover.
  const auto metrics = loop.metrics(1000, 4000);
  EXPECT_NEAR(metrics.mean_vout, 1.0, 0.05);
  EXPECT_LT(metrics.mean_abs_error_v, 0.15);
}

}  // namespace
}  // namespace ddl
