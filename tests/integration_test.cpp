// Cross-module integration tests: the full pipeline from design
// specification to regulated output voltage, and the thesis's headline
// comparisons exercised end to end.
#include <gtest/gtest.h>

#include <set>

#include "ddl/analysis/linearity.h"
#include "ddl/control/closed_loop.h"
#include "ddl/core/calibrated_dpwm.h"
#include "ddl/core/design_calculator.h"
#include "ddl/synth/delay_line_synth.h"

namespace ddl {
namespace {

using cells::OperatingPoint;
using cells::Technology;

const Technology kTech = Technology::i32nm_class();

TEST(EndToEnd, SpecToCalibratedDpwmAtEveryCorner) {
  // Design for 100 MHz / 6 bits, build both schemes, calibrate and check
  // 50% duty at every process corner.
  core::DesignCalculator calc(kTech);
  const core::DesignSpec spec{100.0, 6};
  const auto proposed_design = calc.size_proposed(spec);
  const auto conventional_design = calc.size_conventional(spec);

  for (const auto& op :
       {OperatingPoint::fast_process_only(), OperatingPoint::typical(),
        OperatingPoint::slow_process_only()}) {
    core::ProposedDelayLine proposed_line(kTech, proposed_design.line);
    core::ProposedDpwmSystem proposed(proposed_line, spec.clock_period_ps());
    proposed.set_environment(core::EnvironmentSchedule(op));
    ASSERT_TRUE(proposed.calibrate().has_value())
        << "proposed at " << to_string(op.corner);
    EXPECT_NEAR(proposed.generate(0, 128).duty(), 0.5, 0.03);

    core::ConventionalDelayLine conventional_line(kTech,
                                                  conventional_design.line);
    core::ConventionalDpwmSystem conventional(conventional_line,
                                              spec.clock_period_ps());
    conventional.set_environment(core::EnvironmentSchedule(op));
    ASSERT_TRUE(conventional.calibrate().has_value())
        << "conventional at " << to_string(op.corner);
    EXPECT_NEAR(conventional.generate(0, 32).duty(), 0.5, 0.05);
  }
}

TEST(EndToEnd, ProposedBeatsConventionalOnLinearityWithMismatch) {
  // The thesis's headline linearity claim, on mismatched dies, after
  // calibration at the typical corner.
  const auto op = OperatingPoint::typical();
  const double period = 10'000.0;
  double proposed_inl_total = 0.0;
  double conventional_inl_total = 0.0;
  constexpr int kDies = 10;
  for (int die = 1; die <= kDies; ++die) {
    core::ProposedDelayLine proposed_line(kTech, {256, 2},
                                          static_cast<std::uint64_t>(die));
    core::ProposedController proposed_ctl(proposed_line, period);
    ASSERT_TRUE(proposed_ctl.run_to_lock(op).has_value());
    // Physical tap uniformity over the taps the calibrated system uses
    // (one clock period's worth = 2 x tap_sel cells) -- what Figures 41/42
    // and 50/51 mean by "linearity": identical cells step uniformly.
    const std::size_t usable = 2 * proposed_ctl.tap_sel();
    std::vector<double> proposed_curve;
    for (std::size_t tap = 0; tap < usable; ++tap) {
      proposed_curve.push_back(proposed_line.tap_delay_ps(tap, op));
    }
    proposed_inl_total +=
        analysis::analyze_linearity(proposed_curve).max_inl_lsb;

    core::ConventionalDelayLine conventional_line(
        kTech, {64, 4, 2}, static_cast<std::uint64_t>(die));
    core::ConventionalController conventional_ctl(conventional_line, period);
    ASSERT_TRUE(conventional_ctl.run_to_lock(op).has_value());
    conventional_inl_total +=
        analysis::analyze_linearity(conventional_line.tap_delays(op))
            .max_inl_lsb;
  }
  // Average across dies: identical cells beat per-cell tuned branches.
  EXPECT_LT(proposed_inl_total / kDies, conventional_inl_total / kDies);
}

TEST(EndToEnd, ProposedAreaAdvantageHoldsWithSizedDesigns) {
  core::DesignCalculator calc(kTech);
  for (double mhz : {50.0, 100.0, 200.0}) {
    const core::DesignSpec spec{mhz, 6};
    const double proposed_area =
        synth::synthesize_proposed(calc.size_proposed(spec).line, kTech)
            .total_area_um2();
    const double conventional_area =
        synth::synthesize_conventional(calc.size_conventional(spec).line,
                                       kTech)
            .total_area_um2();
    EXPECT_LT(proposed_area, conventional_area) << mhz << " MHz";
  }
}

TEST(EndToEnd, ClosedLoopRegulatesThroughProposedDelayLineAtSlowCorner) {
  // The full Figure 15 stack with the paper's DPWM in the loop, on a slow-
  // corner die: calibration is what makes regulation work.
  const double period_ps = 1e6;  // 1 MHz switching for the power stage.
  core::DesignCalculator calc(kTech);
  const auto design = calc.size_proposed(core::DesignSpec{1.0, 6});
  core::ProposedDelayLine line(kTech, design.line, /*seed=*/21);
  core::ProposedDpwmSystem dpwm_system(line, period_ps);
  dpwm_system.set_environment(
      core::EnvironmentSchedule(OperatingPoint::slow_process_only()));
  ASSERT_TRUE(dpwm_system.calibrate().has_value());

  analog::BuckParams params;
  params.vin = 3.0;
  control::PidController pid(control::PidParams{}, line.size() - 1,
                             line.size() / 3);
  control::DigitallyControlledBuck loop(
      analog::BuckConverter(params),
      analog::WindowAdc(analog::WindowAdcParams{1.0, 10e-3, 7}),
      std::move(pid), dpwm_system);
  loop.run(3000, control::constant_load(0.4));
  const auto metrics = loop.metrics(2500, 3000);
  EXPECT_NEAR(metrics.mean_vout, 1.0, 0.05);
}

TEST(EndToEnd, VoltageSpikeIsTrackedByContinuousCalibration) {
  // Section 3.1: the calibration accounts for supply spikes.
  const double period = 10'000.0;
  core::ProposedDelayLine line(kTech, {256, 2});
  core::ProposedDpwmSystem system(line, period);
  system.set_environment(
      core::EnvironmentSchedule(OperatingPoint::typical())
          .with_voltage_spike(sim::from_us(1.0), sim::from_us(3.0), -0.15));
  ASSERT_TRUE(system.calibrate().has_value());
  sim::Time t = 0;
  double worst_error = 0.0;
  for (int i = 0; i < 500; ++i) {
    const auto pwm = system.generate(t, 128);
    t += system.period_ps();
    // Skip the first few periods after each disturbance edge; the
    // controller needs a handful of cycles to re-track.
    const double tu = sim::to_us(pwm.start);
    const bool near_edge = (tu > 0.97 && tu < 1.30) || (tu > 2.97 && tu < 3.30);
    if (!near_edge) {
      worst_error = std::max(worst_error, std::abs(pwm.duty() - 0.5));
    }
  }
  EXPECT_LT(worst_error, 0.03);
}

TEST(EndToEnd, GuaranteedResolutionSurvivesSlowCorner) {
  // The sizing promise: a 6-bit-resolution design keeps >= 64 distinct duty
  // levels even when the slow corner shrinks the usable tap count.
  core::DesignCalculator calc(kTech);
  const auto design = calc.size_proposed(core::DesignSpec{100.0, 6});
  core::ProposedDelayLine line(kTech, design.line);
  core::ProposedController controller(line, 10'000.0);
  const auto op = OperatingPoint::slow_process_only();
  ASSERT_TRUE(controller.run_to_lock(op).has_value());
  core::DutyMapper mapper(design.line.num_cells);
  std::set<std::size_t> distinct_taps;
  for (std::uint64_t w = 0; w < design.line.num_cells; ++w) {
    distinct_taps.insert(mapper.map(w, controller.tap_sel()));
  }
  // ~2^6 usable levels: the slow corner locks ~31 cells to the half period
  // (5 ns / 160 ps = 31.25), giving 2 x 31 = 62 distinct taps, minus the
  // controller's +/-1 lock dither.  The thesis's own section 4.3 notes the
  // slow corner maps many input words onto the same calibrated word.
  EXPECT_GE(distinct_taps.size(), 60u);
}

}  // namespace
}  // namespace ddl
