// Tests for the batched Monte-Carlo die kernel (analysis/mc_batch.h).
//
// The engine's headline contract is *bit-identity*: every batched die must
// equal the scalar reference path -- which drives the real
// ProposedDelayLine / ProposedController / DutyMapper objects -- exactly,
// for any trial count, thread count, lane position and kernel variant.
// These tests cross-validate die-by-die, so a single diverging die fails
// with its index and both bit patterns; the CI mc-equivalence job runs
// them under ASan/UBSan and uploads the offending seed as an artifact
// (DDL_MC_EQUIV_ARTIFACT below).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "ddl/analysis/bench_json.h"
#include "ddl/analysis/mc_batch.h"
#include "ddl/analysis/monte_carlo.h"
#include "ddl/cells/batch_mismatch.h"
#include "ddl/core/proposed_controller.h"
#include "ddl/core/proposed_line.h"
#include "ddl/dpwm/behavioral.h"

namespace ddl::analysis {
namespace {

const cells::Technology& tech() {
  static const auto kTech = cells::Technology::i32nm_class();
  return kTech;
}

McBatchSpec fig50_spec() {
  McBatchSpec spec;
  spec.line = BatchLineSpec::from_technology(tech(), {256, 2});
  spec.clock_period_ps = 10'000.0;
  return spec;
}

std::uint64_t bits_of(double x) {
  std::uint64_t u = 0;
  std::memcpy(&u, &x, sizeof(u));
  return u;
}

/// When DDL_MC_EQUIV_ARTIFACT names a file, records the first diverging
/// die there (base seed, die index, both bit patterns) so the CI
/// mc-equivalence job can upload it as the reproducer artifact.
void report_divergence(std::uint64_t base_seed, std::size_t die,
                       std::size_t threads, double batched, double scalar) {
  const char* path = std::getenv("DDL_MC_EQUIV_ARTIFACT");
  if (path == nullptr) {
    return;
  }
  JsonObject record;
  record.set("base_seed", static_cast<std::uint64_t>(base_seed));
  record.set("die_index", static_cast<std::uint64_t>(die));
  record.set("die_seed", die_seed(base_seed, die));
  record.set("threads", static_cast<std::uint64_t>(threads));
  record.set("batched_value", batched);
  record.set("scalar_value", scalar);
  record.set("batched_bits", bits_of(batched));
  record.set("scalar_bits", bits_of(scalar));
  record.set("kernel", mc_batch_kernel_name());
  write_file_atomic(path, record.to_json() + "\n");
}

/// Element-wise cross-validation of one batched run against the scalar
/// reference; reports (and artifacts) the first diverging die.
void expect_matches_scalar(const McBatchSpec& spec, std::size_t trials,
                           std::uint64_t base_seed, std::size_t threads) {
  const auto batched =
      monte_carlo_batched_samples(spec, trials, base_seed, threads);
  ASSERT_EQ(batched.size(), trials);
  for (std::size_t i = 0; i < trials; ++i) {
    const double scalar = batch_die_inl_scalar(spec, i, die_seed(base_seed, i));
    if (bits_of(batched[i]) != bits_of(scalar)) {
      report_divergence(base_seed, i, threads, batched[i], scalar);
    }
    ASSERT_EQ(bits_of(batched[i]), bits_of(scalar))
        << "die " << i << " of " << trials << " diverged (base_seed "
        << base_seed << ", threads " << threads << "): batched " << batched[i]
        << " scalar " << scalar;
  }
}

// ---- Bit-identity with the scalar reference -------------------------------

TEST(McBatch, MatchesScalarAcrossSeedsAndThreadCounts) {
  const auto spec = fig50_spec();
  // 257 = 32 full blocks + a 1-die tail; {1, 3} covers serial and a pool
  // whose shard boundaries do not align with the 8-die blocks.
  for (std::uint64_t seed : {std::uint64_t{2024}, std::uint64_t{77},
                             std::uint64_t{0xdeadbeef}}) {
    for (std::size_t threads : {std::size_t{1}, std::size_t{3}}) {
      expect_matches_scalar(spec, 257, seed, threads);
    }
  }
}

TEST(McBatch, SingleDieBatchEqualsScalar) {
  expect_matches_scalar(fig50_spec(), 1, 2024, 1);
}

TEST(McBatch, TailShorterThanLaneWidthEqualsScalar) {
  // 13 dies: one full block + a 5-lane tail; the duplicated tail lanes'
  // outputs must be discarded, not returned.
  expect_matches_scalar(fig50_spec(), 13, 99, 1);
  expect_matches_scalar(fig50_spec(), kBatchLanes - 1, 99, 2);
}

TEST(McBatch, SamplesIdenticalAtEveryThreadCount) {
  const auto spec = fig50_spec();
  const auto serial = monte_carlo_batched_samples(spec, 201, 2024, 1);
  for (std::size_t threads : {std::size_t{2}, std::size_t{5}}) {
    EXPECT_EQ(serial, monte_carlo_batched_samples(spec, 201, 2024, threads))
        << "threads=" << threads;
  }
}

TEST(McBatch, SummaryBitIdenticalAcrossThreadCounts) {
  const auto spec = fig50_spec();
  const auto one = monte_carlo_batched(spec, 150, 7, 1);
  const auto four = monte_carlo_batched(spec, 150, 7, 4);
  EXPECT_EQ(bits_of(one.mean), bits_of(four.mean));
  EXPECT_EQ(bits_of(one.stddev), bits_of(four.stddev));
  EXPECT_EQ(bits_of(one.min), bits_of(four.min));
  EXPECT_EQ(bits_of(one.max), bits_of(four.max));
  EXPECT_EQ(bits_of(one.p05), bits_of(four.p05));
  EXPECT_EQ(bits_of(one.p50), bits_of(four.p50));
  EXPECT_EQ(bits_of(one.p95), bits_of(four.p95));
  EXPECT_EQ(one.count, four.count);
}

// ---- Divergence / fallback ------------------------------------------------

TEST(McBatch, FaultedDieFallsBackToScalarAndStillMatches) {
  auto spec = fig50_spec();
  // A 70x fault on one cell pushes that die's crossing tap past the full
  // period: the closed-form lock walk must refuse it and re-run the die on
  // the scalar path (real controller, fmod wrap and all).
  spec.faults.push_back({/*trial=*/3, /*cell=*/5, /*severity=*/70.0});
  McBatchStats stats;
  const auto batched = monte_carlo_batched_samples(spec, 20, 2024, 1, &stats);
  EXPECT_GT(stats.scalar_fallbacks, 0u)
      << "a 70x cell fault should leave the closed form's domain";
  for (std::size_t i = 0; i < batched.size(); ++i) {
    EXPECT_EQ(bits_of(batched[i]),
              bits_of(batch_die_inl_scalar(spec, i, die_seed(2024, i))))
        << "die " << i;
  }
  // The fault is frozen into die 3 only: every other die is bit-identical
  // to the fault-free run.
  const auto clean = monte_carlo_batched_samples(fig50_spec(), 20, 2024, 1);
  for (std::size_t i = 0; i < batched.size(); ++i) {
    if (i != 3) {
      EXPECT_EQ(bits_of(batched[i]), bits_of(clean[i])) << "die " << i;
    }
  }
  EXPECT_NE(bits_of(batched[3]), bits_of(clean[3]));
}

TEST(McBatch, MultipleFaultsOnOneDieUseScalarPath) {
  auto spec = fig50_spec();
  // The kernel carries at most one fault per lane; two mild faults on the
  // same die must route it to the scalar path and still match the twin
  // (which applies both, in order).
  spec.faults.push_back({/*trial=*/0, /*cell=*/10, /*severity=*/1.2});
  spec.faults.push_back({/*trial=*/0, /*cell=*/11, /*severity=*/0.9});
  McBatchStats stats;
  const auto batched = monte_carlo_batched_samples(spec, 4, 5, 1, &stats);
  EXPECT_GT(stats.scalar_fallbacks, 0u);
  for (std::size_t i = 0; i < batched.size(); ++i) {
    EXPECT_EQ(bits_of(batched[i]),
              bits_of(batch_die_inl_scalar(spec, i, die_seed(5, i))))
        << "die " << i;
  }
}

// ---- Explicit-die batching (the scenario planner's entry point) -----------

TEST(McBatchDies, MatchesTrialIndexedRunDieByDie) {
  auto spec = fig50_spec();
  spec.faults.push_back({/*trial=*/3, /*cell=*/5, /*severity=*/70.0});
  spec.faults.push_back({/*trial=*/6, /*cell=*/10, /*severity=*/1.2});
  spec.faults.push_back({/*trial=*/6, /*cell=*/11, /*severity=*/0.9});
  const auto reference = monte_carlo_batched_samples(spec, 21, 2024, 1);

  std::vector<BatchDie> dies(21);
  for (std::size_t i = 0; i < dies.size(); ++i) {
    dies[i].seed = die_seed(2024, i);
    for (const BatchFault& fault : spec.faults) {
      if (fault.trial == i) {
        dies[i].faults.push_back(fault);
      }
    }
  }
  auto dies_spec = spec;
  dies_spec.faults.clear();  // Explicit dies carry their own faults.
  McBatchStats stats;
  const auto samples = monte_carlo_batched_dies(dies_spec, dies, 1, &stats);
  ASSERT_EQ(samples.size(), reference.size());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    EXPECT_EQ(bits_of(samples[i]), bits_of(reference[i])) << "die " << i;
  }
  // Die 3's 70x fault and die 6's compound fault both leave the kernel.
  EXPECT_GE(stats.scalar_fallbacks, 2u);
}

TEST(McBatchDies, CrossScenarioLanePackingIsInvisible) {
  // Interleave dies from two "scenarios" (different base seeds, one with a
  // per-die fault) into one batch: each die must still equal its
  // home-scenario run, regardless of which lanes its neighbours came from.
  auto faulted = fig50_spec();
  for (std::size_t i = 0; i < 9; ++i) {
    faulted.faults.push_back({i, /*cell=*/31, /*severity=*/3.0});
  }
  const auto home_a = monte_carlo_batched_samples(fig50_spec(), 9, 801, 1);
  const auto home_b = monte_carlo_batched_samples(faulted, 9, 77, 1);

  std::vector<BatchDie> dies;
  for (std::size_t i = 0; i < 9; ++i) {
    dies.push_back({die_seed(801, i), {}});
    dies.push_back({die_seed(77, i), {{0, 31, 3.0}}});
  }
  const auto packed = monte_carlo_batched_dies(fig50_spec(), dies, 1);
  ASSERT_EQ(packed.size(), 18u);
  for (std::size_t i = 0; i < 9; ++i) {
    EXPECT_EQ(bits_of(packed[2 * i]), bits_of(home_a[i])) << "a die " << i;
    EXPECT_EQ(bits_of(packed[2 * i + 1]), bits_of(home_b[i]))
        << "b die " << i;
  }
}

TEST(McBatchDies, IdenticalAtEveryThreadCount) {
  std::vector<BatchDie> dies(37);
  for (std::size_t i = 0; i < dies.size(); ++i) {
    dies[i].seed = die_seed(7, i);
  }
  const auto serial = monte_carlo_batched_dies(fig50_spec(), dies, 1);
  for (std::size_t threads : {std::size_t{2}, std::size_t{5}}) {
    EXPECT_EQ(serial, monte_carlo_batched_dies(fig50_spec(), dies, threads))
        << "threads=" << threads;
  }
}

TEST(McBatchDies, EmptyAndInvalidInputs) {
  EXPECT_TRUE(monte_carlo_batched_dies(fig50_spec(), {}).empty());
  std::vector<BatchDie> bad_cell{{1, {{0, /*cell=*/4096, 2.0}}}};
  EXPECT_THROW(monte_carlo_batched_dies(fig50_spec(), bad_cell),
               std::out_of_range);
  std::vector<BatchDie> bad_severity{{1, {{0, /*cell=*/0, 0.0}}}};
  EXPECT_THROW(monte_carlo_batched_dies(fig50_spec(), bad_severity),
               std::invalid_argument);
}

// ---- Kernel dispatch ------------------------------------------------------

TEST(McBatch, BaseKernelBitIdenticalToDispatchedKernel) {
  const auto spec = fig50_spec();
  const auto dispatched = monte_carlo_batched_samples(spec, 64, 2024, 1);
  const std::string default_name = mc_batch_kernel_name();
  ASSERT_EQ(setenv("DDL_MC_BATCH_KERNEL", "base", 1), 0);
  EXPECT_STREQ(mc_batch_kernel_name(), "base");
  const auto base = monte_carlo_batched_samples(spec, 64, 2024, 1);
  ASSERT_EQ(unsetenv("DDL_MC_BATCH_KERNEL"), 0);
  EXPECT_EQ(mc_batch_kernel_name(), default_name);
  EXPECT_EQ(base, dispatched)
      << "base and " << default_name << " kernels diverged";
}

// ---- Yield ----------------------------------------------------------------

TEST(McBatchYield, MatchesScalarTwinAndThreadCount) {
  BatchYieldSpec spec;
  // 128 cells at 100 MHz sits on the yield knee (~50 %), so both branches
  // of the pass predicate are exercised.
  spec.line = BatchLineSpec::from_technology(tech(), {128, 2});
  spec.clock_period_ps = 10'000.0;
  const std::size_t trials = 333;
  const double batched = monte_carlo_yield_batched(spec, trials, 77, 1);
  std::size_t passes = 0;
  for (std::size_t i = 0; i < trials; ++i) {
    passes += batch_die_covers_period_scalar(spec, die_seed(77, i)) ? 1 : 0;
  }
  EXPECT_DOUBLE_EQ(batched, static_cast<double>(passes) /
                                static_cast<double>(trials));
  EXPECT_GT(batched, 0.2);
  EXPECT_LT(batched, 0.8);
  EXPECT_DOUBLE_EQ(batched, monte_carlo_yield_batched(spec, trials, 77, 3));
}

// ---- Corner sweep ---------------------------------------------------------

TEST(McBatchSweep, EachCornerEqualsStandaloneBatchedRun) {
  auto spec = fig50_spec();
  const std::vector<cells::OperatingPoint> corners = {
      cells::OperatingPoint::typical(),
      cells::OperatingPoint::slow_process_only(),
      cells::OperatingPoint::fast_process_only()};
  const auto swept = sweep_batched(corners, 19, 2024, spec, 3);
  ASSERT_EQ(swept.size(), corners.size());
  for (std::size_t c = 0; c < corners.size(); ++c) {
    spec.op = corners[c];
    const auto standalone = monte_carlo_batched(spec, 19, 2024, 1);
    EXPECT_EQ(bits_of(swept[c].summary.mean), bits_of(standalone.mean))
        << "corner " << c;
    EXPECT_EQ(bits_of(swept[c].summary.min), bits_of(standalone.min));
    EXPECT_EQ(bits_of(swept[c].summary.max), bits_of(standalone.max));
    EXPECT_EQ(swept[c].summary.count, standalone.count);
  }
}

// ---- Statistical sanity ---------------------------------------------------

TEST(McBatch, InlDistributionAgreesWithEventDrivenModel) {
  // The batched model (per-cell Gaussian, sigma_buffer / sqrt(buffers))
  // and the event-driven per-buffer model are different samplers of the
  // same physics: their INL distributions must agree loosely.
  const auto spec = fig50_spec();
  const auto batched = monte_carlo_batched(spec, 200, 2024, 0);
  const auto event_driven = monte_carlo(
      200, 2024,
      [&](std::uint64_t seed) {
        const auto op = cells::OperatingPoint::slow_process_only();
        core::ProposedDelayLine line(tech(), {256, 2}, seed);
        core::ProposedController controller(line, 10'000.0);
        core::DutyMapper mapper(256);
        if (!controller.run_to_lock(op).has_value()) {
          return 0.0;
        }
        std::vector<double> curve;
        for (std::uint64_t w = 0; w < 256; ++w) {
          curve.push_back(
              line.tap_delay_ps(mapper.map(w, controller.tap_sel()), op));
        }
        double lo = curve.front();
        double hi = curve.back();
        double lsb = (hi - lo) / 255.0;
        double max_dev = 0.0;
        for (std::size_t w = 0; w < curve.size(); ++w) {
          max_dev = std::max(
              max_dev,
              std::abs(curve[w] - (lo + lsb * static_cast<double>(w))));
        }
        return max_dev / std::abs(lsb);
      },
      0);
  EXPECT_NEAR(batched.mean, event_driven.mean, 0.5);
  EXPECT_GT(batched.mean, 1.0);
}

// ---- Counter-based sampler ------------------------------------------------

TEST(McBatchSampler, InverseNormalCdfRoundTripsThroughErfc) {
  // Acklam's refined inverse CDF is accurate to ~1.15e-9 relative; verify
  // through the forward CDF Phi(z) = erfc(-z / sqrt(2)) / 2 on a grid
  // covering both tails and the central region.
  for (double p : {1e-12, 1e-6, 0.01, 0.0243, 0.3, 0.5, 0.7, 0.9758, 0.99,
                   1.0 - 1e-6}) {
    const double z = cells::batch_normal_icdf(p);
    const double round_trip = 0.5 * std::erfc(-z / std::sqrt(2.0));
    EXPECT_NEAR(round_trip, p, 1e-8 * std::max(p, 1.0 - p) + 1e-15)
        << "p=" << p;
  }
  EXPECT_DOUBLE_EQ(cells::batch_normal_icdf(0.5), 0.0);
  EXPECT_LT(cells::batch_normal_icdf(0.01), 0.0);
  EXPECT_GT(cells::batch_normal_icdf(0.99), 0.0);
}

TEST(McBatchSampler, CounterDrawsAreDeterministicAndSeedSensitive) {
  std::vector<double> a(16), b(16), c(16);
  cells::batch_sample_cell_delays(42, 16, 80.0, 0.02, a.data());
  cells::batch_sample_cell_delays(42, 16, 80.0, 0.02, b.data());
  cells::batch_sample_cell_delays(43, 16, 80.0, 0.02, c.data());
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  for (double d : a) {
    EXPECT_GE(d, 80.0 * 0.5);
    EXPECT_LE(d, 80.0 * 1.5);
  }
}

// ---- Validation -----------------------------------------------------------

TEST(McBatch, RejectsInvalidSpecs) {
  auto spec = fig50_spec();
  spec.line.num_cells = 100;  // Not a power of two.
  EXPECT_THROW(monte_carlo_batched_samples(spec, 8, 1), std::invalid_argument);
  spec = fig50_spec();
  spec.clock_period_ps = 0.0;
  EXPECT_THROW(monte_carlo_batched_samples(spec, 8, 1), std::invalid_argument);
  spec = fig50_spec();
  spec.faults.push_back({/*trial=*/0, /*cell=*/9999, /*severity=*/2.0});
  EXPECT_THROW(monte_carlo_batched_samples(spec, 8, 1), std::out_of_range);
}

// ---- The SoA tap view feeding other consumers -----------------------------

TEST(TapDelayView, BitIdenticalToOwningLineQueries) {
  core::ProposedDelayLine line(tech(), {256, 2}, /*seed=*/3);
  const auto op = cells::OperatingPoint::slow_process_only();
  const auto view = line.tap_view(op);
  ASSERT_EQ(view.size(), 256u);
  for (std::size_t i = 0; i < view.size(); ++i) {
    EXPECT_EQ(bits_of(view.at(i)), bits_of(line.tap_delay_ps(i, op)))
        << "tap " << i;
  }
}

TEST(TapDelayView, DpwmViewConstructorMatchesVectorConstructor) {
  core::ProposedDelayLine line(tech(), {256, 2}, /*seed=*/9);
  const auto op = cells::OperatingPoint::typical();
  dpwm::DelayLineDpwm from_vector(line.tap_delays_ps(op), 25'000);
  dpwm::DelayLineDpwm from_view(line.tap_view(op), 25'000);
  EXPECT_EQ(from_vector.tap_delays_ps(), from_view.tap_delays_ps());
  for (std::uint64_t duty : {std::uint64_t{0}, std::uint64_t{100},
                             std::uint64_t{255}}) {
    const auto a = from_vector.generate(0, duty);
    const auto b = from_view.generate(0, duty);
    EXPECT_EQ(a.high_ps, b.high_ps) << "duty " << duty;
    EXPECT_EQ(a.period_ps, b.period_ps);
  }
}

}  // namespace
}  // namespace ddl::analysis
