// Tests for the analog substrate: buck plant, linear regulators, switched-
// capacitor converter and the window ADC.
#include <gtest/gtest.h>

#include <cmath>

#include "ddl/analog/adc.h"
#include "ddl/analog/buck.h"
#include "ddl/analog/linear_regulator.h"
#include "ddl/analog/switched_capacitor.h"

namespace ddl::analog {
namespace {

constexpr sim::Time kPeriod = 1'000'000;  // 1 MHz switching.

dpwm::PwmPeriod pwm_at(double duty) {
  dpwm::PwmPeriod p;
  p.start = 0;
  p.period_ps = kPeriod;
  p.high_ps = static_cast<sim::Time>(duty * kPeriod);
  return p;
}

BuckParams default_params() { return BuckParams{}; }

// ---- Buck converter -------------------------------------------------------

TEST(Buck, RejectsBadParameters) {
  BuckParams params;
  params.inductance_h = 0.0;
  EXPECT_THROW(BuckConverter(params, 1e-9), std::invalid_argument);
  EXPECT_THROW(BuckConverter(default_params(), 0.0), std::invalid_argument);
}

TEST(Buck, SteadyStateFollowsDutyTimesVin) {
  // Eq 11: Vo = Duty x Vg (minus conduction drops).
  BuckConverter buck(default_params());
  for (int i = 0; i < 4000; ++i) {
    buck.run_period(pwm_at(0.5), 0.5);
  }
  EXPECT_NEAR(buck.output_voltage(), 1.5, 0.08);
}

class BuckDutySweep : public ::testing::TestWithParam<double> {};

TEST_P(BuckDutySweep, OutputTracksDuty) {
  const double duty = GetParam();
  BuckConverter buck(default_params());
  for (int i = 0; i < 4000; ++i) {
    buck.run_period(pwm_at(duty), 0.3);
  }
  EXPECT_NEAR(buck.output_voltage(), duty * 3.0, 0.12) << "duty " << duty;
}

INSTANTIATE_TEST_SUITE_P(Duties, BuckDutySweep,
                         ::testing::Values(0.2, 0.33, 0.5, 0.66, 0.8));

TEST(Buck, RippleShrinksWithLargerCapacitor) {
  BuckParams small = default_params();
  small.capacitance_f = 4.7e-6;
  BuckParams large = default_params();
  large.capacitance_f = 47e-6;
  BuckConverter buck_small(small);
  BuckConverter buck_large(large);
  for (int i = 0; i < 3000; ++i) {
    buck_small.run_period(pwm_at(0.5), 0.5);
    buck_large.run_period(pwm_at(0.5), 0.5);
  }
  const double ripple_small =
      buck_small.last_period_vmax() - buck_small.last_period_vmin();
  const double ripple_large =
      buck_large.last_period_vmax() - buck_large.last_period_vmin();
  EXPECT_GT(ripple_small, ripple_large);
}

TEST(Buck, EfficiencyIsHighButBelowUnity) {
  BuckConverter buck(default_params());
  for (int i = 0; i < 5000; ++i) {
    buck.run_period(pwm_at(0.5), 0.5);
  }
  const double eta = buck.energy().efficiency();
  EXPECT_GT(eta, 0.80);  // Table 1: switching regulators are efficient...
  EXPECT_LT(eta, 1.00);  // ...but not lossless.
}

TEST(Buck, InductorCurrentRampsUpDuringOnPhase) {
  BuckConverter buck(default_params());
  buck.run_static(2e-6, /*high_on=*/true, 0.0);
  EXPECT_GT(buck.inductor_current_a(), 0.0);  // Figure 13's up-ramp.
}

TEST(Buck, LoadStepCausesTransientDroop) {
  BuckConverter buck(default_params());
  for (int i = 0; i < 3000; ++i) {
    buck.run_period(pwm_at(0.5), 0.2);
  }
  const double settled = buck.output_voltage();
  buck.run_period(pwm_at(0.5), 2.0);  // 10x load step.
  EXPECT_LT(buck.output_voltage(), settled);
}

TEST(Buck, ResetRestoresColdState) {
  BuckConverter buck(default_params());
  buck.run_period(pwm_at(0.5), 0.5);
  buck.reset();
  EXPECT_DOUBLE_EQ(buck.output_voltage(), 0.0);
  EXPECT_DOUBLE_EQ(buck.inductor_current_a(), 0.0);
  EXPECT_DOUBLE_EQ(buck.energy().input_j, 0.0);
}

// ---- Linear regulators ------------------------------------------------------

TEST(Linear, DropoutOrderingMatchesEquations) {
  // Eqs 6-8: LDO < quasi-LDO < standard NPN.
  LinearRegulator npn(LinearTopology::kStandardNpn, 1.0);
  LinearRegulator ldo(LinearTopology::kLdo, 1.0);
  LinearRegulator quasi(LinearTopology::kQuasiLdo, 1.0);
  EXPECT_LT(ldo.dropout_v(), quasi.dropout_v());
  EXPECT_LT(quasi.dropout_v(), npn.dropout_v());
  EXPECT_NEAR(npn.dropout_v(), 1.6, 1e-9);    // 2x0.7 + 0.2.
  EXPECT_NEAR(ldo.dropout_v(), 0.2, 1e-9);
  EXPECT_NEAR(quasi.dropout_v(), 0.9, 1e-9);  // 0.7 + 0.2.
}

TEST(Linear, GroundCurrentOrderingIsInverse) {
  // Section 2.1.1: NPN has the *lowest* ground current, LDO the highest.
  LinearRegulator npn(LinearTopology::kStandardNpn, 1.0);
  LinearRegulator ldo(LinearTopology::kLdo, 1.0);
  LinearRegulator quasi(LinearTopology::kQuasiLdo, 1.0);
  const double iload = 0.1;
  EXPECT_LT(npn.ground_current_a(iload), quasi.ground_current_a(iload));
  EXPECT_LT(quasi.ground_current_a(iload), ldo.ground_current_a(iload));
}

TEST(Linear, EfficiencyDegradesWithInputOutputRatio) {
  // Table 1 / Eq 1-5: efficiency ~ Vout/Vin.
  LinearRegulator ldo(LinearTopology::kLdo, 1.0);
  const double eta_low_drop = ldo.efficiency(1.2, 0.1);
  const double eta_high_drop = ldo.efficiency(3.0, 0.1);
  EXPECT_GT(eta_low_drop, 0.80);
  EXPECT_LT(eta_high_drop, 0.36);
  EXPECT_NEAR(eta_high_drop, 1.0 / 3.0, 0.02);
}

TEST(Linear, DissipationIsInputMinusOutputPower) {
  LinearRegulator ldo(LinearTopology::kLdo, 1.0);
  const auto op = ldo.solve(3.0, 0.5);
  EXPECT_NEAR(op.dissipation_w, op.input_power_w - op.output_power_w, 1e-12);
  EXPECT_GT(op.dissipation_w, 0.9);  // ~1 W of heat at 2 V drop, 0.5 A.
}

TEST(Linear, OutOfRegulationTracksInputMinusDropout) {
  LinearRegulator ldo(LinearTopology::kLdo, 2.5);
  const auto op = ldo.solve(1.0, 0.1);  // Vin far below Vout target.
  EXPECT_FALSE(op.in_regulation);
  EXPECT_NEAR(op.vout, 0.8, 1e-9);  // Vin - dropout: cannot step up.
  EXPECT_LT(op.vout, 1.0);
}

TEST(Linear, RejectsNonPositiveTarget) {
  EXPECT_THROW(LinearRegulator(LinearTopology::kLdo, 0.0),
               std::invalid_argument);
}

// ---- Switched-capacitor converter -------------------------------------------

TEST(SwitchedCap, NoLoadHitsIdealRatio) {
  SwitchedCapConverter sc(SwitchedCapParams{});
  const auto op = sc.solve(3.0, 0.0);
  EXPECT_DOUBLE_EQ(op.vout, 1.5);
  EXPECT_DOUBLE_EQ(op.efficiency, 1.0);
}

TEST(SwitchedCap, LoadCausesDroop) {
  // The "weak regulation capability" drawback.
  SwitchedCapConverter sc(SwitchedCapParams{});
  const auto light = sc.solve(3.0, 0.01);
  const auto heavy = sc.solve(3.0, 0.5);
  EXPECT_LT(heavy.vout, light.vout);
  EXPECT_LT(heavy.efficiency, light.efficiency);
}

TEST(SwitchedCap, FasterSwitchingRegulatesStiffer) {
  SwitchedCapParams slow_params;
  slow_params.f_sw_hz = 0.2e6;
  SwitchedCapParams fast_params;
  fast_params.f_sw_hz = 5e6;
  EXPECT_GT(SwitchedCapConverter(slow_params).output_resistance_ohm(),
            SwitchedCapConverter(fast_params).output_resistance_ohm());
}

TEST(SwitchedCap, ConversionRatioIsStructural) {
  SwitchedCapParams params;
  params.ratio_num = 2;
  params.ratio_den = 3;
  SwitchedCapConverter sc(params);
  EXPECT_NEAR(sc.conversion_ratio(), 2.0 / 3.0, 1e-12);
  // The ratio does not adapt to the input (unlike a buck's duty cycle).
  EXPECT_NEAR(sc.solve(3.0, 0.0).vout / 3.0, sc.solve(1.5, 0.0).vout / 1.5,
              1e-12);
}

// ---- Window ADC ---------------------------------------------------------------

TEST(Adc, ZeroBinAroundVref) {
  WindowAdc adc(WindowAdcParams{1.0, 10e-3, 7});
  EXPECT_EQ(adc.sample(1.000), 0);
  EXPECT_EQ(adc.sample(1.004), 0);
  EXPECT_EQ(adc.sample(0.996), 0);
}

TEST(Adc, SignConvention) {
  WindowAdc adc(WindowAdcParams{1.0, 10e-3, 7});
  EXPECT_GT(adc.sample(0.95), 0);  // Output low -> positive error -> more duty.
  EXPECT_LT(adc.sample(1.05), 0);
}

TEST(Adc, SaturatesAtMaxCode) {
  WindowAdc adc(WindowAdcParams{1.0, 10e-3, 7});
  EXPECT_EQ(adc.sample(0.0), 7);
  EXPECT_EQ(adc.sample(5.0), -7);
}

TEST(Adc, CodeRoundTrip) {
  WindowAdc adc(WindowAdcParams{1.0, 10e-3, 7});
  for (int code = -7; code <= 7; ++code) {
    const double verr = adc.code_to_error_v(code);
    EXPECT_EQ(adc.sample(1.0 - verr), code);
  }
}

TEST(Adc, RejectsBadParams) {
  EXPECT_THROW(WindowAdc(WindowAdcParams{1.0, 0.0, 7}), std::invalid_argument);
  EXPECT_THROW(WindowAdc(WindowAdcParams{1.0, 1e-3, 0}), std::invalid_argument);
}

}  // namespace
}  // namespace ddl::analog
