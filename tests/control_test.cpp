// Tests for the PID compensator and the closed-loop digitally controlled
// buck converter (thesis Figure 15).
#include <gtest/gtest.h>

#include "ddl/control/closed_loop.h"
#include "ddl/dpwm/behavioral.h"

namespace ddl::control {
namespace {

// ~1 MHz switching; a power of two so counter DPWMs divide it exactly.
constexpr sim::Time kPeriod = 1'048'576;

analog::BuckParams plant_params() {
  analog::BuckParams params;
  params.vin = 3.0;
  return params;
}

analog::WindowAdcParams adc_params() {
  return analog::WindowAdcParams{1.0, 10e-3, 7};
}

// A 10-bit DPWM: word for ~1 V out of 3 V is ~341.
PidController make_pid(std::uint64_t duty_max = 1023,
                       std::uint64_t duty_init = 341) {
  return PidController(PidParams{}, duty_max, duty_init);
}

TEST(Pid, RejectsBadRanges) {
  EXPECT_THROW(PidController(PidParams{}, 0, 0), std::invalid_argument);
  EXPECT_THROW(PidController(PidParams{}, 10, 11), std::invalid_argument);
}

TEST(Pid, ZeroErrorHoldsDuty) {
  auto pid = make_pid();
  const auto d0 = pid.update(0);
  EXPECT_EQ(d0, 341u);
  EXPECT_EQ(pid.update(0), d0);
}

TEST(Pid, PositiveErrorRaisesDuty) {
  auto pid = make_pid();
  EXPECT_GT(pid.update(3), 341u);
}

TEST(Pid, IntegratorAccumulatesPersistentError) {
  auto pid = make_pid();
  const auto first = pid.update(1);
  std::uint64_t last = first;
  // ki is small (~0.016), so give the integrator room to show.
  for (int i = 0; i < 300; ++i) {
    last = pid.update(1);
  }
  EXPECT_GT(last, first);
}

TEST(Pid, OutputClampsToRange) {
  auto pid = make_pid();
  for (int i = 0; i < 10'000; ++i) {
    pid.update(7);
  }
  EXPECT_EQ(pid.duty(), 1023u);
  pid.reset();
  for (int i = 0; i < 10'000; ++i) {
    pid.update(-7);
  }
  EXPECT_EQ(pid.duty(), 0u);
}

TEST(Pid, IntegratorSaturates) {
  PidParams params;
  params.integrator_max = 100;
  params.integrator_min = -100;
  PidController pid(params, 1023, 341);
  for (int i = 0; i < 1000; ++i) {
    pid.update(7);
  }
  EXPECT_EQ(pid.integrator(), 100);
}

TEST(Pid, ResetRestoresInitialState) {
  auto pid = make_pid();
  pid.update(5);
  pid.reset();
  EXPECT_EQ(pid.duty(), 341u);
  EXPECT_EQ(pid.integrator(), 0);
}

// ---- Closed loop -----------------------------------------------------------

TEST(ClosedLoop, SettlesToReferenceWithFineDpwm) {
  dpwm::CounterDpwm dpwm(10, kPeriod);  // ~3 mV DPWM LSB < 10 mV ADC LSB.
  DigitallyControlledBuck loop(analog::BuckConverter(plant_params()),
                               analog::WindowAdc(adc_params()), make_pid(),
                               dpwm);
  loop.run(3000, constant_load(0.4));
  const auto metrics = loop.metrics(2000, 3000);
  EXPECT_NEAR(metrics.mean_vout, 1.0, 0.02);
  EXPECT_FALSE(metrics.limit_cycling);
  EXPECT_LT(loop.settling_period(0.03), 2500u);
}

TEST(ClosedLoop, CoarseDpwmLimitCycles) {
  // The resolution rule behind the whole thesis (section 2.2): if the DPWM
  // LSB (3 V / 16 = 187 mV) is far coarser than the ADC LSB (10 mV), no
  // duty word holds the output inside the zero bin and the loop hunts.
  dpwm::CounterDpwm coarse(4, kPeriod);
  DigitallyControlledBuck loop(analog::BuckConverter(plant_params()),
                               analog::WindowAdc(adc_params()),
                               make_pid(15, 5), coarse);
  loop.run(3000, constant_load(0.4));
  const auto metrics = loop.metrics(2000, 3000);
  EXPECT_TRUE(metrics.limit_cycling);
  EXPECT_GT(metrics.vout_stddev, 0.005);
}

TEST(ClosedLoop, RecoversFromLoadStep) {
  dpwm::CounterDpwm dpwm(10, kPeriod);
  DigitallyControlledBuck loop(analog::BuckConverter(plant_params()),
                               analog::WindowAdc(adc_params()), make_pid(),
                               dpwm);
  loop.run(2500, step_load(0.2, 1.0, 1500));
  // Transient droop right after the step...
  double min_after_step = 10.0;
  for (std::uint64_t i = 1500; i < 1700; ++i) {
    min_after_step = std::min(min_after_step, loop.history()[i].vout);
  }
  EXPECT_LT(min_after_step, 0.995);
  // ...but the loop pulls the output back.
  const auto metrics = loop.metrics(2300, 2500);
  EXPECT_NEAR(metrics.mean_vout, 1.0, 0.03);
}

TEST(ClosedLoop, HistoryRecordsEveryPeriod) {
  dpwm::CounterDpwm dpwm(10, kPeriod);
  DigitallyControlledBuck loop(analog::BuckConverter(plant_params()),
                               analog::WindowAdc(adc_params()), make_pid(),
                               dpwm);
  loop.run(10, constant_load(0.1));
  loop.run(5, constant_load(0.1));
  ASSERT_EQ(loop.history().size(), 15u);
  EXPECT_EQ(loop.history()[14].period_index, 14u);
}

TEST(ClosedLoop, MetricsWindowIsHalfOpenAndClamped) {
  dpwm::CounterDpwm dpwm(10, kPeriod);
  DigitallyControlledBuck loop(analog::BuckConverter(plant_params()),
                               analog::WindowAdc(adc_params()), make_pid(),
                               dpwm);
  loop.run(10, constant_load(0.1));
  EXPECT_EQ(loop.metrics(5, 5).distinct_duty_words, 0u);
  EXPECT_GT(loop.metrics(0, 100).distinct_duty_words, 0u);  // Clamped to 10.
}

TEST(ClosedLoop, SettlingNeverWhenBandImpossiblyTight) {
  dpwm::CounterDpwm dpwm(10, kPeriod);
  DigitallyControlledBuck loop(analog::BuckConverter(plant_params()),
                               analog::WindowAdc(adc_params()), make_pid(),
                               dpwm);
  loop.run(100, constant_load(0.4));
  EXPECT_EQ(loop.settling_period(1e-9), ~std::uint64_t{0});
}

}  // namespace
}  // namespace ddl::control
