// Tests for the behavioral DPWM models against the thesis's timing diagrams
// (Figures 19, 21, 23).
#include <gtest/gtest.h>

#include <stdexcept>

#include "ddl/dpwm/behavioral.h"

namespace ddl::dpwm {
namespace {

constexpr sim::Time kPeriod = 10'000;  // 100 MHz switching.

std::vector<sim::Time> ideal_taps(int bits, sim::Time period) {
  const std::size_t n = std::size_t{1} << bits;
  std::vector<sim::Time> taps;
  for (std::size_t i = 1; i <= n; ++i) {
    taps.push_back(static_cast<sim::Time>(i) * period /
                   static_cast<sim::Time>(n));
  }
  return taps;
}

// ---- Counter DPWM (Figure 19) -------------------------------------------

TEST(CounterDpwmTest, TwoBitDutyCyclesMatchFigure19) {
  CounterDpwm dpwm(2, kPeriod);
  EXPECT_NEAR(dpwm.generate(0, 0b00).duty(), 0.25, 1e-12);
  EXPECT_NEAR(dpwm.generate(0, 0b01).duty(), 0.50, 1e-12);
  EXPECT_NEAR(dpwm.generate(0, 0b10).duty(), 0.75, 1e-12);
  EXPECT_NEAR(dpwm.generate(0, 0b11).duty(), 1.00, 1e-12);
}

TEST(CounterDpwmTest, CounterClockIsPeriodOverTwoToN) {
  CounterDpwm dpwm(4, 16'000);
  EXPECT_EQ(dpwm.counter_clock_period_ps(), 1'000);
}

TEST(CounterDpwmTest, RejectsNonDivisiblePeriod) {
  EXPECT_THROW(CounterDpwm(3, 10'001), std::invalid_argument);
  EXPECT_THROW(CounterDpwm(0, 1024), std::invalid_argument);
}

TEST(CounterDpwmTest, DutyWordIsMasked) {
  CounterDpwm dpwm(2, kPeriod);
  EXPECT_EQ(dpwm.generate(0, 0b100).high_ps, dpwm.generate(0, 0b00).high_ps);
}

// Property sweep: every duty word of an n-bit counter DPWM yields exactly
// (d+1)/2^n duty.
class CounterSweep : public ::testing::TestWithParam<int> {};

TEST_P(CounterSweep, AllWordsExact) {
  const int bits = GetParam();
  const sim::Time period = sim::Time{1} << (bits + 4);
  CounterDpwm dpwm(bits, period);
  for (std::uint64_t d = 0; d < (std::uint64_t{1} << bits); ++d) {
    const auto pwm = dpwm.generate(0, d);
    const double expected =
        static_cast<double>(d + 1) / static_cast<double>(1ull << bits);
    EXPECT_NEAR(pwm.duty(), expected, 1e-12) << "word " << d;
  }
}

INSTANTIATE_TEST_SUITE_P(Bits, CounterSweep, ::testing::Values(2, 3, 5, 8));

// ---- Delay-line DPWM (Figure 21) ----------------------------------------

TEST(DelayLineDpwmTest, TwoBitDutyCyclesMatchFigure21) {
  DelayLineDpwm dpwm(ideal_taps(2, kPeriod), kPeriod);
  EXPECT_NEAR(dpwm.generate(0, 0b00).duty(), 0.25, 1e-12);
  EXPECT_NEAR(dpwm.generate(0, 0b01).duty(), 0.50, 1e-12);
  EXPECT_NEAR(dpwm.generate(0, 0b10).duty(), 0.75, 1e-12);
  EXPECT_NEAR(dpwm.generate(0, 0b11).duty(), 1.00, 1e-12);
}

TEST(DelayLineDpwmTest, MiscalibratedTapsShiftDuty) {
  // A slow-corner line (2x delays) with no calibration executes the wrong
  // duty -- the thesis's motivation for calibration (Figure 28).
  auto taps = ideal_taps(2, kPeriod);
  for (auto& tap : taps) {
    tap *= 2;
  }
  DelayLineDpwm dpwm(taps, kPeriod);
  EXPECT_NEAR(dpwm.generate(0, 0b00).duty(), 0.50, 1e-12);  // Wanted 25%.
  EXPECT_NEAR(dpwm.generate(0, 0b01).duty(), 1.00, 1e-12);  // Wanted 50%.
}

TEST(DelayLineDpwmTest, PulseClampsToPeriod) {
  auto taps = ideal_taps(2, kPeriod);
  taps.back() = kPeriod + 5'000;  // Line longer than the period.
  DelayLineDpwm dpwm(taps, kPeriod);
  EXPECT_EQ(dpwm.generate(0, 3).high_ps, kPeriod);
}

TEST(DelayLineDpwmTest, RejectsBadTapVectors) {
  EXPECT_THROW(DelayLineDpwm({}, kPeriod), std::invalid_argument);
  EXPECT_THROW(DelayLineDpwm({100, 200, 300}, kPeriod),
               std::invalid_argument);  // Not a power of two.
  EXPECT_THROW(DelayLineDpwm({200, 100}, kPeriod),
               std::invalid_argument);  // Not increasing.
}

TEST(DelayLineDpwmTest, TrainAdvancesStartTimes) {
  DelayLineDpwm dpwm(ideal_taps(3, kPeriod), kPeriod);
  const auto train = dpwm.generate_train(0, 4, 5);
  ASSERT_EQ(train.size(), 5u);
  for (std::size_t i = 0; i < train.size(); ++i) {
    EXPECT_EQ(train[i].start, static_cast<sim::Time>(i) * kPeriod);
    EXPECT_EQ(train[i].high_ps, train[0].high_ps);
  }
}

// ---- Hybrid DPWM (Figure 23) --------------------------------------------

TEST(HybridDpwmTest, Figure23Example) {
  // 5 bits: 3-bit counter (fast clock = T/8) + 4-tap line spanning T/8.
  // Period chosen divisible by 32 so every tap lands on an exact ps tick.
  const sim::Time kPeriod = 12'800;
  const sim::Time fast = kPeriod / 8;
  HybridDpwm dpwm(5, 2, ideal_taps(2, fast), kPeriod);
  // duty = 10110: msb = 101 = 5 fast ticks, lsb = 10 -> tap 2 (the thesis's
  // t2), giving 3/4 of a fast period extra.
  const auto pwm = dpwm.generate(0, 0b10110);
  EXPECT_EQ(pwm.high_ps, 5 * fast + (3 * fast) / 4);
  // Unified convention: duty word d -> (d+1)/32 of the period.
  EXPECT_NEAR(pwm.duty(), 23.0 / 32.0, 1e-12);
}

TEST(HybridDpwmTest, MatchesEquivalentCounterWhenLineIsIdeal) {
  const sim::Time kPeriod = 12'800;
  const sim::Time fast = kPeriod / 8;
  HybridDpwm hybrid(5, 2, ideal_taps(2, fast), kPeriod);
  CounterDpwm counter(5, kPeriod);
  for (std::uint64_t d = 0; d < 32; ++d) {
    EXPECT_EQ(hybrid.generate(0, d).high_ps, counter.generate(0, d).high_ps)
        << "word " << d;
  }
}

TEST(HybridDpwmTest, RejectsBadGeometry) {
  EXPECT_THROW(HybridDpwm(5, 5, ideal_taps(2, 100), kPeriod),
               std::invalid_argument);
  EXPECT_THROW(HybridDpwm(5, 2, ideal_taps(3, 100), kPeriod),
               std::invalid_argument);
}

}  // namespace
}  // namespace ddl::dpwm
