// Tests for the lock supervisor: loss detectors, the bounded re-lock state
// machine with backoff, the degradation ladder (freeze -> coarse -> counter
// fallback), health-event content, and the fault hooks it depends on
// (conventional-line cell faults, stuck tap selectors, clock-period steps).
#include <gtest/gtest.h>

#include <cmath>

#include "ddl/core/calibrated_dpwm.h"
#include "ddl/core/lock_supervisor.h"

namespace ddl::core {
namespace {

using cells::OperatingPoint;

const cells::Technology kTech = cells::Technology::i32nm_class();
constexpr double kPeriod100MHz = 10'000.0;  // ps

ProposedLineConfig proposed_config() { return ProposedLineConfig{256, 2}; }

/// Drives `periods` switching periods through the supervisor at 50% duty,
/// optionally reporting a constant ADC error code after every period (the
/// closed loop's observe_error wiring, minus the closed loop).
void run_periods(LockSupervisor& supervisor, sim::Time& t, int periods,
                 int error_code = 0) {
  for (int i = 0; i < periods; ++i) {
    const std::uint64_t half = std::uint64_t{1} << (supervisor.bits() - 1);
    supervisor.generate(t, half);
    supervisor.observe_error(error_code);
    t += supervisor.period_ps();
  }
}

// ---- Conventional-line fault parity ---------------------------------------

TEST(ConventionalLineFault, ScalesEveryBranchOfTheVictimCell) {
  ConventionalDelayLine faulty(kTech, {64, 4, 2}, /*seed=*/9);
  ConventionalDelayLine clean(kTech, {64, 4, 2}, /*seed=*/9);
  const auto op = OperatingPoint::typical();

  faulty.inject_cell_fault(3, 2.0);
  for (int setting = 0; setting < 4; ++setting) {
    faulty.set_setting(3, setting);
    clean.set_setting(3, setting);
    EXPECT_DOUBLE_EQ(faulty.cell_delay_ps(3, op),
                     2.0 * clean.cell_delay_ps(3, op))
        << "branch setting " << setting;
  }
  // Neighbours are untouched.
  EXPECT_DOUBLE_EQ(faulty.cell_delay_ps(2, op), clean.cell_delay_ps(2, op));
  EXPECT_DOUBLE_EQ(faulty.cell_delay_ps(4, op), clean.cell_delay_ps(4, op));
}

TEST(ConventionalLineFault, ComposesMultiplicativelyAndClears) {
  ConventionalDelayLine faulty(kTech, {64, 4, 2}, /*seed=*/9);
  ConventionalDelayLine clean(kTech, {64, 4, 2}, /*seed=*/9);
  const auto op = OperatingPoint::typical();
  const double base = clean.cell_delay_ps(7, op);

  faulty.inject_cell_fault(7, 3.0);
  faulty.inject_cell_fault(7, 2.0);
  EXPECT_NEAR(faulty.cell_delay_ps(7, op), 6.0 * base, 1e-9);
  // Clearing is multiplication by the reciprocal (the runner's lowering).
  faulty.inject_cell_fault(7, 1.0 / 6.0);
  EXPECT_NEAR(faulty.cell_delay_ps(7, op), base, 1e-9);
}

TEST(ConventionalLineFault, RejectsOutOfRangeVictims) {
  ConventionalDelayLine line(kTech, {64, 4, 2});
  EXPECT_THROW(line.inject_cell_fault(64, 2.0), std::out_of_range);
}

// ---- Constructor validation -----------------------------------------------

TEST(LockSupervisor, RejectsDegenerateConfigs) {
  ProposedDelayLine line(kTech, proposed_config());
  ProposedDpwmSystem system(line, kPeriod100MHz);
  ASSERT_TRUE(system.calibrate().has_value());
  auto supervised = make_supervised(system);

  SupervisorConfig no_attempts;
  no_attempts.max_relock_attempts = 0;
  EXPECT_THROW(LockSupervisor(*supervised, no_attempts),
               std::invalid_argument);

  SupervisorConfig all_bits_masked;
  all_bits_masked.coarse_resolution_loss_bits = system.bits();
  EXPECT_THROW(LockSupervisor(*supervised, all_bits_masked),
               std::invalid_argument);
}

// ---- Detection + re-lock --------------------------------------------------

TEST(LockSupervisor, HealthySystemEmitsNoEvents) {
  ProposedDelayLine line(kTech, proposed_config());
  ProposedDpwmSystem system(line, kPeriod100MHz);
  ASSERT_TRUE(system.calibrate().has_value());
  auto supervised = make_supervised(system);
  LockSupervisor supervisor(*supervised);

  sim::Time t = 0;
  run_periods(supervisor, t, 200);
  EXPECT_TRUE(supervisor.events().empty());
  EXPECT_EQ(supervisor.state(), SupervisorState::kMonitoring);
  EXPECT_EQ(supervisor.degradation(), DegradationLevel::kNone);
  EXPECT_EQ(supervisor.lock_losses(), 0u);
}

TEST(LockSupervisor, CellFaultTripsTapExcursionAndRelocks) {
  ProposedDelayLine line(kTech, proposed_config());
  ProposedDpwmSystem system(line, kPeriod100MHz);
  ASSERT_TRUE(system.calibrate().has_value());
  auto supervised = make_supervised(system);
  LockSupervisor supervisor(*supervised);
  const std::size_t healthy_tap = supervisor.baseline_tap();

  sim::Time t = 0;
  run_periods(supervisor, t, 50);
  ASSERT_TRUE(supervisor.events().empty());

  // A 10x slower cell inside the locked range moves the half-period point
  // by ~9 taps -- past the default 6-tap drift window.
  line.inject_cell_fault(10, 10.0);
  run_periods(supervisor, t, 200);

  EXPECT_GE(supervisor.lock_losses(), 1u);
  EXPECT_GE(supervisor.relocks(), 1u);
  EXPECT_EQ(supervisor.state(), SupervisorState::kMonitoring);
  EXPECT_EQ(supervisor.degradation(), DegradationLevel::kNone);

  ASSERT_GE(supervisor.events().size(), 3u);
  const HealthEvent& lost = supervisor.events()[0];
  EXPECT_EQ(lost.kind, HealthEventKind::kLockLost);
  EXPECT_EQ(lost.detail, "tap_excursion");
  EXPECT_GT(lost.period, 0u);
  const HealthEvent& attempt = supervisor.events()[1];
  EXPECT_EQ(attempt.kind, HealthEventKind::kRelockAttempt);
  EXPECT_EQ(attempt.detail, "attempt_1");

  // The re-lock settles on the fault-shifted tap and rebases the window.
  EXPECT_NE(supervisor.baseline_tap(), healthy_tap);
  EXPECT_GT(supervisor.max_relock_latency_periods(), 0u);
}

TEST(LockSupervisor, DutyWatchdogFiresOnPersistentAdcError) {
  ProposedDelayLine line(kTech, proposed_config());
  ProposedDpwmSystem system(line, kPeriod100MHz);
  ASSERT_TRUE(system.calibrate().has_value());
  auto supervised = make_supervised(system);
  SupervisorConfig config;
  config.watchdog_periods = 16;
  LockSupervisor supervisor(*supervised, config);

  sim::Time t = 0;
  // Startup slew: a large error before the loop has ever regulated leaves
  // the watchdog disarmed -- soft-start must not read as a lock loss.
  run_periods(supervisor, t, 100, /*error_code=*/5);
  EXPECT_TRUE(supervisor.events().empty());

  // In-regulation periods arm it; sub-threshold codes never trip it.
  run_periods(supervisor, t, 100, /*error_code=*/2);
  EXPECT_TRUE(supervisor.events().empty());

  // A persistent large error now fires; the (healthy) system re-locks at
  // once.
  run_periods(supervisor, t, 40, /*error_code=*/-5);
  ASSERT_GE(supervisor.events().size(), 1u);
  EXPECT_EQ(supervisor.events()[0].kind, HealthEventKind::kLockLost);
  EXPECT_EQ(supervisor.events()[0].detail, "duty_watchdog");
  EXPECT_GE(supervisor.relocks(), 1u);
}

TEST(LockSupervisor, InfeasiblePeriodDetectedAsAtLimitThenDegrades) {
  ProposedDelayLine line(kTech, proposed_config());
  ProposedDpwmSystem system(line, kPeriod100MHz);
  ASSERT_TRUE(system.calibrate().has_value());
  auto supervised = make_supervised(system);
  SupervisorConfig config;
  config.relock_backoff_periods = 8;
  // Window wider than the line: only the at_limit detector can fire, so the
  // walk to the clamp is observed as the pinned condition, not an excursion.
  config.tap_drift_window = 1'000;
  LockSupervisor supervisor(*supervised, config);

  // A clock-tree fault parks the period far beyond the line's reach: the
  // controller pins at the end of the line and every re-lock walk fails.
  system.set_clock_period_ps(100'000.0);
  sim::Time t = 0;
  run_periods(supervisor, t, 400);

  EXPECT_EQ(supervisor.state(), SupervisorState::kDegraded);
  EXPECT_GE(supervisor.degradation(), DegradationLevel::kFrozenTap);
  EXPECT_EQ(supervisor.relocks(), 0u);

  ASSERT_FALSE(supervisor.events().empty());
  EXPECT_EQ(supervisor.events()[0].kind, HealthEventKind::kLockLost);
  EXPECT_EQ(supervisor.events()[0].detail, "at_limit");
  int failed = 0;
  int degraded = 0;
  for (const HealthEvent& event : supervisor.events()) {
    failed += event.kind == HealthEventKind::kRelockFailed;
    degraded += event.kind == HealthEventKind::kDegraded;
  }
  EXPECT_EQ(failed, supervisor.config().max_relock_attempts);
  EXPECT_EQ(degraded, 1);
}

// ---- Degradation ladder ---------------------------------------------------

TEST(LockSupervisor, StuckTapWalksTheLadderToCounterFallback) {
  ProposedDelayLine line(kTech, proposed_config());
  ProposedDpwmSystem system(line, kPeriod100MHz);
  ASSERT_TRUE(system.calibrate().has_value());
  auto supervised = make_supervised(system);
  SupervisorConfig config;
  config.max_relock_attempts = 2;
  config.relock_backoff_periods = 4;
  config.watchdog_periods = 8;
  LockSupervisor supervisor(*supervised, config);

  // A healthy stretch first: the loop regulates, which arms the watchdog.
  sim::Time t = 0;
  run_periods(supervisor, t, 20);

  // Stuck selector far from the baseline: every detector path fails to
  // recover (re-calibration cannot move the tap), and the loop keeps
  // reporting a large error, so the ladder runs all the way down.
  system.controller().force_tap(5);
  run_periods(supervisor, t, 120, /*error_code=*/6);

  EXPECT_EQ(supervisor.state(), SupervisorState::kDegraded);
  EXPECT_EQ(supervisor.degradation(), DegradationLevel::kCounterFallback);
  EXPECT_EQ(supervisor.relocks(), 0u);

  // The ladder was walked rung by rung, each rung a health event.
  std::vector<int> rungs;
  for (const HealthEvent& event : supervisor.events()) {
    if (event.kind == HealthEventKind::kDegraded) {
      rungs.push_back(event.degradation);
    }
  }
  ASSERT_EQ(rungs.size(), 3u);
  EXPECT_EQ(rungs[0], static_cast<int>(DegradationLevel::kFrozenTap));
  EXPECT_EQ(rungs[1], static_cast<int>(DegradationLevel::kCoarseResolution));
  EXPECT_EQ(rungs[2], static_cast<int>(DegradationLevel::kCounterFallback));

  // 10'000 ps splits evenly into 16 counter slots: the fallback carries a
  // 4-bit word and 50% duty still executes within one fallback LSB.
  const auto pwm = supervisor.generate(t, 128);
  EXPECT_NEAR(pwm.duty(), 0.5, 1.0 / 16.0);
}

TEST(LockSupervisor, CounterFallbackCanBeDisabled) {
  ProposedDelayLine line(kTech, proposed_config());
  ProposedDpwmSystem system(line, kPeriod100MHz);
  ASSERT_TRUE(system.calibrate().has_value());
  auto supervised = make_supervised(system);
  SupervisorConfig config;
  config.max_relock_attempts = 1;
  config.relock_backoff_periods = 4;
  config.watchdog_periods = 8;
  config.counter_fallback = false;
  LockSupervisor supervisor(*supervised, config);

  sim::Time t = 0;
  run_periods(supervisor, t, 20);
  system.controller().force_tap(5);
  run_periods(supervisor, t, 200, /*error_code=*/6);

  // The ladder stops at coarse resolution when the fallback is disabled.
  EXPECT_EQ(supervisor.degradation(), DegradationLevel::kCoarseResolution);
}

// ---- Conventional scheme through the same supervisor ----------------------

TEST(LockSupervisor, ConventionalRuntimeFaultRelocksViaRegisterResearch) {
  ConventionalDelayLine line(kTech, {64, 4, 2});
  ConventionalDpwmSystem system(line, kPeriod100MHz);
  ASSERT_TRUE(system.calibrate().has_value());
  auto supervised = make_supervised(system);
  LockSupervisor supervisor(*supervised);
  const std::size_t healthy_increments = supervisor.baseline_tap();
  EXPECT_EQ(healthy_increments, line.total_increments());

  sim::Time t = 0;
  run_periods(supervisor, t, 50);
  ASSERT_TRUE(supervisor.events().empty());

  // A 3x slower cell overshoots the period; a shift register can only add
  // delay, so recovery is a full re-search from all-zero -- which the
  // supervisor drives as one bounded recalibration.
  line.inject_cell_fault(0, 3.0);
  run_periods(supervisor, t, 400);

  EXPECT_GE(supervisor.lock_losses(), 1u);
  EXPECT_GE(supervisor.relocks(), 1u);
  EXPECT_EQ(supervisor.state(), SupervisorState::kMonitoring);
  // The re-locked register compensates the slow cell with fewer increments.
  EXPECT_LT(line.total_increments(), healthy_increments);
}

TEST(LockSupervisor, ThrashingRelocksEscalateToDegradation) {
  ConventionalDelayLine line(kTech, {64, 4, 2});
  ConventionalDpwmSystem system(line, kPeriod100MHz);
  ASSERT_TRUE(system.calibrate().has_value());
  auto supervised = make_supervised(system);
  LockSupervisor supervisor(*supervised);

  sim::Time t = 0;
  run_periods(supervisor, t, 50);
  ASSERT_TRUE(supervisor.events().empty());

  // A 25x victim widens one increment past the lock tolerance: every
  // re-search "locks" onto a point that is immediately out of window
  // again, so an unguarded supervisor would relock once per period
  // forever.  The stability window counts those instant re-losses as
  // thrash and spends the attempt budget on them.
  line.inject_cell_fault(31, 25.0);
  run_periods(supervisor, t, 400);

  EXPECT_EQ(supervisor.state(), SupervisorState::kDegraded);
  EXPECT_EQ(supervisor.degradation(), DegradationLevel::kFrozenTap);
  // Bounded churn: one initial loss plus max_relock_attempts thrash
  // rounds, not one loss per period.
  EXPECT_LE(supervisor.lock_losses(),
            static_cast<std::uint64_t>(
                supervisor.config().max_relock_attempts) + 1);
}

TEST(LockSupervisor, ConventionalFrozenRegisterCannotFakeARelock) {
  ConventionalDelayLine line(kTech, {64, 4, 2});
  ConventionalDpwmSystem system(line, kPeriod100MHz);
  ASSERT_TRUE(system.calibrate().has_value());
  auto supervised = make_supervised(system);
  SupervisorConfig config;
  config.max_relock_attempts = 2;
  config.relock_backoff_periods = 4;
  LockSupervisor supervisor(*supervised, config);

  sim::Time t = 0;
  run_periods(supervisor, t, 20);

  // Freeze the register, then slow the line so the frozen calibration is
  // genuinely wrong: the stale kLocked latch must not satisfy the re-lock
  // check (the frozen controller re-evaluates the lock condition).
  system.controller().set_register_frozen(true);
  line.inject_cell_fault(0, 5.0);
  line.inject_cell_fault(1, 5.0);
  run_periods(supervisor, t, 300, /*error_code=*/6);

  EXPECT_EQ(supervisor.relocks(), 0u);
  EXPECT_EQ(supervisor.state(), SupervisorState::kDegraded);
  EXPECT_GE(supervisor.degradation(), DegradationLevel::kFrozenTap);
}

}  // namespace
}  // namespace ddl::core
