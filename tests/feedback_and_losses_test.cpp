// Tests for the kernel's feedback structures (SR latch, self-oscillating
// ring) and the buck converter's switching-loss model.
#include <gtest/gtest.h>

#include "ddl/analog/buck.h"
#include "ddl/dpwm/gate_level_ring.h"
#include "ddl/dpwm/ring_oscillator.h"
#include "ddl/sim/trace.h"

namespace ddl {
namespace {

const cells::Technology kTech = cells::Technology::i32nm_class();

struct Rig {
  sim::Simulator sim;
  sim::NetlistContext ctx{&sim, &kTech, cells::OperatingPoint::typical()};
};

// ---- SR latch --------------------------------------------------------------

TEST(SrLatch, SetAndResetToggleTheBistable) {
  Rig rig;
  const auto set = rig.sim.add_signal("set", sim::Logic::k0);
  const auto reset = rig.sim.add_signal("reset", sim::Logic::k0);
  const auto latch = dpwm::build_sr_latch(rig.ctx, set, reset, "sr");
  rig.sim.run(1'000);
  EXPECT_EQ(rig.sim.value(latch.q), sim::Logic::k0);
  EXPECT_EQ(rig.sim.value(latch.q_n), sim::Logic::k1);

  // Set pulse.
  rig.sim.schedule(set, sim::Logic::k1, 0);
  rig.sim.schedule(set, sim::Logic::k0, 500);
  rig.sim.run(3'000);
  EXPECT_EQ(rig.sim.value(latch.q), sim::Logic::k1);
  EXPECT_EQ(rig.sim.value(latch.q_n), sim::Logic::k0);

  // State HOLDS with both inputs low (the bistable property).
  rig.sim.run_for(10'000);
  EXPECT_EQ(rig.sim.value(latch.q), sim::Logic::k1);

  // Reset pulse.
  rig.sim.schedule(reset, sim::Logic::k1, 0);
  rig.sim.schedule(reset, sim::Logic::k0, 500);
  rig.sim.run_for(3'000);
  EXPECT_EQ(rig.sim.value(latch.q), sim::Logic::k0);
  EXPECT_EQ(rig.sim.value(latch.q_n), sim::Logic::k1);
}

// ---- Self-oscillating ring ---------------------------------------------------

TEST(GateRing, OscillatesAtTwoLapsAndMatchesBehavioralModel) {
  Rig rig;
  const auto enable = rig.sim.add_signal("en");  // Starts X.
  const auto ring = dpwm::build_ring_oscillator(rig.ctx, enable, 16, 2);
  sim::WaveformRecorder rec(rig.sim);
  rec.watch(ring.out);
  // Drive enable low (a real transition) to flush the chain, then start.
  rig.sim.schedule(enable, sim::Logic::k0, 0);
  rig.sim.run(5'000);
  rig.sim.schedule(enable, sim::Logic::k1, 0);
  rig.sim.run(60'000);

  const auto rises = rec.rising_edges(ring.out);
  ASSERT_GE(rises.size(), 5u);
  const sim::Time measured_period = rises[4] - rises[3];
  // Lap = 16 stages x 80 ps + NAND 25 ps; period = 2 laps.
  const sim::Time expected = 2 * (16 * 80 + 25);
  EXPECT_EQ(measured_period, expected);

  // The behavioral RingOscillatorDpwm predicts the same period up to the
  // closing gate (its model folds the inversion into the stages).
  dpwm::RingOscillatorDpwm behavioral(kTech, {16, 2});
  EXPECT_NEAR(static_cast<double>(measured_period),
              static_cast<double>(behavioral.period_ps()), 2 * 25.0 + 1);
}

TEST(GateRing, StopsWhenDisabled) {
  Rig rig;
  const auto enable = rig.sim.add_signal("en");
  const auto ring = dpwm::build_ring_oscillator(rig.ctx, enable, 8, 1);
  rig.sim.schedule(enable, sim::Logic::k0, 0);
  rig.sim.run(2'000);
  rig.sim.schedule(enable, sim::Logic::k1, 0);
  rig.sim.run(10'000);
  rig.sim.schedule(enable, sim::Logic::k0, 0);
  rig.sim.run(15'000);
  // With enable low the head pins at 1 and the loop drains.
  sim::WaveformRecorder rec(rig.sim);
  rec.watch(ring.out);
  const auto before = rig.sim.executed_events();
  rig.sim.run_for(20'000);
  EXPECT_EQ(rig.sim.value(ring.out), sim::Logic::k1);
  EXPECT_EQ(rig.sim.executed_events(), before);  // No more activity.
}

TEST(GateRing, MismatchedStagesShiftThePeriod) {
  Rig rig;
  const auto enable = rig.sim.add_signal("en");
  const std::vector<double> delays{100.0, 120.0, 90.0, 110.0};
  const auto ring = dpwm::build_ring_oscillator(rig.ctx, enable, 4, 1, delays);
  sim::WaveformRecorder rec(rig.sim);
  rec.watch(ring.out);
  rig.sim.schedule(enable, sim::Logic::k0, 0);
  rig.sim.run(2'000);
  rig.sim.schedule(enable, sim::Logic::k1, 0);
  rig.sim.run(15'000);
  const auto rises = rec.rising_edges(ring.out);
  ASSERT_GE(rises.size(), 3u);
  EXPECT_EQ(rises[2] - rises[1], 2 * (100 + 120 + 90 + 110 + 25));
}

// ---- Buck switching losses ------------------------------------------------------

TEST(SwitchingLoss, EfficiencyFallsWithSwitchingFrequency) {
  // The section 1.3.2 tradeoff: conduction losses are frequency-flat but
  // E_sw x f_sw grows.
  auto efficiency_at = [](double f_sw_hz) {
    analog::BuckParams params;
    analog::BuckConverter buck(params);
    const sim::Time period = sim::from_ps(1e12 / f_sw_hz);
    dpwm::PwmPeriod pwm;
    pwm.period_ps = period;
    pwm.high_ps = period / 2;
    const int periods = static_cast<int>(4e-3 * f_sw_hz);  // 4 ms settle.
    for (int i = 0; i < periods; ++i) {
      buck.run_period(pwm, 0.5);
    }
    return buck.energy().efficiency();
  };
  const double eta_low = efficiency_at(0.5e6);
  const double eta_high = efficiency_at(4e6);
  EXPECT_GT(eta_low, eta_high + 0.02);
  EXPECT_GT(eta_high, 0.80);
}

TEST(SwitchingLoss, AccountedSeparatelyFromConduction) {
  analog::BuckParams params;
  analog::BuckConverter buck(params);
  dpwm::PwmPeriod pwm;
  pwm.period_ps = 1'000'000;
  pwm.high_ps = 500'000;
  for (int i = 0; i < 100; ++i) {
    buck.run_period(pwm, 0.5);
  }
  EXPECT_NEAR(buck.energy().switching_loss_j,
              100 * params.switch_energy_per_cycle_j, 1e-12);
  EXPECT_GT(buck.energy().conduction_loss_j, 0.0);
}

TEST(SwitchingLoss, ZeroEnergyDisablesTheTerm) {
  analog::BuckParams params;
  params.switch_energy_per_cycle_j = 0.0;
  analog::BuckConverter buck(params);
  dpwm::PwmPeriod pwm;
  pwm.period_ps = 1'000'000;
  pwm.high_ps = 500'000;
  buck.run_period(pwm, 0.5);
  EXPECT_DOUBLE_EQ(buck.energy().switching_loss_j, 0.0);
}

}  // namespace
}  // namespace ddl
