// Tests for the Verilog RTL generator and the jitter-mitigation knobs
// (lock hysteresis, tap-selector filtering).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "ddl/analysis/monte_carlo.h"
#include "ddl/core/calibrated_dpwm.h"
#include "ddl/synth/verilog.h"

namespace ddl {
namespace {

const cells::Technology kTech = cells::Technology::i32nm_class();

// ---- Verilog generation ---------------------------------------------------

std::size_t count_occurrences(const std::string& text,
                              const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = text.find(needle); pos != std::string::npos;
       pos = text.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

TEST(Verilog, ProposedModuleCarriesTheDesignParameters) {
  const std::string v = synth::proposed_verilog({256, 2});
  EXPECT_NE(v.find("module ddl_proposed_delay_line"), std::string::npos);
  EXPECT_NE(v.find("parameter NUM_CELLS = 256"), std::string::npos);
  EXPECT_NE(v.find("parameter BUFS_PER_CELL = 2"), std::string::npos);
  EXPECT_NE(v.find("parameter WORD_BITS = 8"), std::string::npos);
  // The architecture's blocks are all present.
  EXPECT_NE(v.find("ddl_delay_cell"), std::string::npos);
  EXPECT_NE(v.find("sample_meta"), std::string::npos);  // 2-FF synchronizer.
  EXPECT_NE(v.find("duty * tap_sel"), std::string::npos);  // Eq 18 mapper.
  EXPECT_NE(v.find("dont_touch"), std::string::npos);
}

TEST(Verilog, ConventionalModuleCarriesTheDesignParameters) {
  const std::string v = synth::conventional_verilog({64, 4, 2});
  EXPECT_NE(v.find("module ddl_conventional_delay_line"), std::string::npos);
  EXPECT_NE(v.find("parameter NUM_CELLS = 64"), std::string::npos);
  EXPECT_NE(v.find("parameter BRANCHES = 4"), std::string::npos);
  EXPECT_NE(v.find("parameter SR_BITS = 129"), std::string::npos);  // Eq 17.
  EXPECT_NE(v.find("ddl_tunable_cell"), std::string::npos);
  EXPECT_NE(v.find("up_lim"), std::string::npos);
}

TEST(Verilog, ModulesAndGeneratesAreBalanced) {
  for (const std::string& v :
       {synth::proposed_verilog({256, 2}),
        synth::conventional_verilog({64, 4, 2})}) {
    EXPECT_EQ(count_occurrences(v, "\nmodule ") + (v.rfind("module ", 0) == 0),
              count_occurrences(v, "endmodule"));
    // " generate\n" (leading space) avoids matching inside "endgenerate".
    EXPECT_EQ(count_occurrences(v, " generate\n"),
              count_occurrences(v, "endgenerate"));
    // No unresolved placeholders.
    EXPECT_EQ(v.find("%%"), std::string::npos);
  }
}

TEST(Verilog, ParametersFollowTheConfig) {
  const std::string v = synth::proposed_verilog({64, 4}, "my_line");
  EXPECT_NE(v.find("module my_line"), std::string::npos);
  EXPECT_NE(v.find("parameter NUM_CELLS = 64"), std::string::npos);
  EXPECT_NE(v.find("parameter BUFS_PER_CELL = 4"), std::string::npos);
  EXPECT_NE(v.find("parameter WORD_BITS = 6"), std::string::npos);
}

TEST(Verilog, WritesBothFiles) {
  const std::string dir = ::testing::TempDir() + "ddl_verilog_test";
  std::filesystem::create_directories(dir);
  EXPECT_EQ(synth::write_verilog_files(dir, {256, 2}, {64, 4, 2}), 2);
  for (const char* name : {"/proposed.v", "/conventional.v"}) {
    std::ifstream in(dir + name);
    ASSERT_TRUE(in.good()) << name;
    std::string contents((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
    EXPECT_NE(contents.find("endmodule"), std::string::npos) << name;
  }
  std::filesystem::remove_all(dir);
}

// ---- Jitter-mitigation knobs -------------------------------------------------

TEST(LockHysteresis, RejectsInvalidAndSlowsDitherRate) {
  core::ProposedDelayLine line(kTech, {256, 2});
  core::ProposedController controller(line, 10'000.0);
  EXPECT_THROW(controller.set_lock_hysteresis(0), std::invalid_argument);
  controller.set_lock_hysteresis(4);
  const auto op = cells::OperatingPoint::typical();
  ASSERT_TRUE(controller.run_to_lock(op).has_value());
  // Count tap movements over 64 locked cycles: hysteresis-4 moves at most
  // every 4th cycle.
  std::size_t moves = 0;
  std::size_t previous = controller.tap_sel();
  for (int i = 0; i < 64; ++i) {
    controller.step(op);
    if (controller.tap_sel() != previous) {
      ++moves;
      previous = controller.tap_sel();
    }
  }
  EXPECT_LE(moves, 64u / 4u + 1u);
  EXPECT_GT(moves, 0u);  // Still tracking, not frozen.
}

TEST(TapFilter, RemovesSteadyStateDutyJitter) {
  core::ProposedDelayLine line(kTech, {256, 2}, /*seed=*/4);
  auto run = [&line](std::size_t depth) {
    core::ProposedDpwmSystem system(line, 10'000.0);
    system.set_tap_filter_depth(depth);
    system.calibrate();
    std::vector<double> widths;
    sim::Time t = 0;
    for (int i = 0; i < 300; ++i) {
      const auto pwm = system.generate(t, 128);
      t += system.period_ps();
      if (i >= 100) {
        widths.push_back(sim::to_ps(pwm.high_ps));
      }
    }
    return analysis::summarize(widths).stddev;
  };
  const double unfiltered = run(1);
  const double filtered = run(8);
  EXPECT_GT(unfiltered, 10.0);   // The +/-1 dither is visible (~1 cell).
  EXPECT_LT(filtered, unfiltered * 0.2);
}

TEST(TapFilter, StillTracksTemperatureDrift) {
  core::ProposedDelayLine line(kTech, {256, 2});
  core::ProposedDpwmSystem system(line, 10'000.0);
  system.set_tap_filter_depth(8);
  system.set_environment(
      core::EnvironmentSchedule(cells::OperatingPoint::typical())
          .with_temperature_ramp(5.0));
  ASSERT_TRUE(system.calibrate().has_value());
  sim::Time t = 0;
  dpwm::PwmPeriod last;
  for (int i = 0; i < 2000; ++i) {
    last = system.generate(t, 128);
    t += system.period_ps();
  }
  EXPECT_NEAR(last.duty(), 0.5, 0.02);
}

TEST(TapFilter, RejectsZeroDepth) {
  core::ProposedDelayLine line(kTech, {256, 2});
  core::ProposedDpwmSystem system(line, 10'000.0);
  EXPECT_THROW(system.set_tap_filter_depth(0), std::invalid_argument);
}

}  // namespace
}  // namespace ddl
