// Focused edge-case coverage across modules: error paths, boundary values
// and small utilities not exercised by the scenario tests.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>

#include "ddl/analysis/mtbf.h"
#include "ddl/analysis/report.h"
#include "ddl/control/pid.h"
#include "ddl/core/hybrid_calibrated.h"
#include "ddl/core/proposed_controller.h"
#include "ddl/dpwm/behavioral.h"
#include "ddl/dpwm/requirements.h"
#include "ddl/sim/trace.h"
#include "ddl/synth/netlist.h"

namespace ddl {
namespace {

const cells::Technology kTech = cells::Technology::i32nm_class();

// ---- sim boundary behaviour -------------------------------------------------

TEST(EdgeSim, WatchingTwiceIsIdempotent) {
  sim::Simulator sim;
  const auto s = sim.add_signal("s", sim::Logic::k0);
  sim::WaveformRecorder rec(sim);
  rec.watch(s);
  rec.watch(s);  // Must not double-register.
  sim.schedule(s, sim::Logic::k1, 10);
  sim.run();
  EXPECT_EQ(rec.rising_edges(s).size(), 1u);
}

TEST(EdgeSim, UnwatchedSignalQueriesThrow) {
  sim::Simulator sim;
  const auto s = sim.add_signal("s");
  sim::WaveformRecorder rec(sim);
  EXPECT_THROW(rec.edges(s), std::out_of_range);
}

TEST(EdgeSim, VcdWatchAfterFirstEventThrows) {
  sim::Simulator sim;
  const auto a = sim.add_signal("a", sim::Logic::k0);
  const auto b = sim.add_signal("b", sim::Logic::k0);
  const std::string path = ::testing::TempDir() + "edge.vcd";
  sim::VcdWriter vcd(sim, path);
  vcd.watch(a);
  sim.schedule(a, sim::Logic::k1, 5);
  sim.run();
  EXPECT_THROW(vcd.watch(b), std::logic_error);
  std::remove(path.c_str());
}

TEST(EdgeSim, PulseWidthIndexingAndMissingPulses) {
  sim::Simulator sim;
  const auto s = sim.add_signal("s", sim::Logic::k0);
  sim::WaveformRecorder rec(sim);
  rec.watch(s);
  sim.schedule(s, sim::Logic::k1, 10);
  sim.schedule(s, sim::Logic::k0, 30);
  sim.schedule(s, sim::Logic::k1, 100);
  sim.schedule(s, sim::Logic::k0, 150);
  sim.run();
  EXPECT_EQ(rec.pulse_width(s, 0), 20);
  EXPECT_EQ(rec.pulse_width(s, 1), 50);
  EXPECT_EQ(rec.pulse_width(s, 2), -1);  // No third pulse.
  EXPECT_EQ(rec.pulse_width(s, 0, 50), 50);  // From-offset skips pulse 0.
}

TEST(EdgeSim, DutyCycleOfEmptyWindowIsZero) {
  sim::Simulator sim;
  const auto s = sim.add_signal("s", sim::Logic::k0);
  sim::WaveformRecorder rec(sim);
  rec.watch(s);
  EXPECT_DOUBLE_EQ(rec.duty_cycle(s, 100, 100), 0.0);
}

// ---- behavioral DPWM boundaries ------------------------------------------------

TEST(EdgeDpwm, TrainOfZeroPeriodsIsEmpty) {
  dpwm::CounterDpwm counter(4, 16'000);
  EXPECT_TRUE(counter.generate_train(0, 3, 0).empty());
}

TEST(EdgeDpwm, PwmPeriodDutyGuardsZeroPeriod) {
  dpwm::PwmPeriod p;  // period_ps == 0.
  EXPECT_DOUBLE_EQ(p.duty(), 0.0);
}

TEST(EdgeDpwm, RequiredBitsSaturatesOnAbsurdResolution) {
  EXPECT_EQ(dpwm::required_bits(3.0, 1e-30), 63);
  EXPECT_EQ(dpwm::required_bits(3.0, 10.0), 0);
}

// ---- mapper / controller boundaries ---------------------------------------------

TEST(EdgeMapper, SmallestLegalMapperAndWordZero) {
  core::DutyMapper mapper(2);
  EXPECT_EQ(mapper.map(0, 1), 0u);
  EXPECT_EQ(mapper.map(1, 1), 1u);
  EXPECT_THROW(core::DutyMapper bad(1), std::invalid_argument);
  EXPECT_THROW(core::DutyMapper bad(3), std::invalid_argument);
}

TEST(EdgeMapper, ClampAtFullScale) {
  core::DutyMapper mapper(256);
  // A pathological tap_sel larger than the line must still clamp.
  EXPECT_EQ(mapper.map(255, 256), 255u);
}

TEST(EdgeController, ZeroPeriodRejected) {
  core::ProposedDelayLine line(kTech, {256, 2});
  EXPECT_THROW(core::ProposedController bad(line, 0.0),
               std::invalid_argument);
  EXPECT_THROW(core::ProposedController bad(line, -5.0),
               std::invalid_argument);
}

TEST(EdgeController, RunToLockHonoursMaxCycles) {
  core::ProposedDelayLine line(kTech, {256, 2});
  core::ProposedController controller(line, 10'000.0);
  // 3 cycles is far too few to walk ~62 taps.
  EXPECT_FALSE(
      controller.run_to_lock(cells::OperatingPoint::typical(), 3).has_value());
  EXPECT_EQ(controller.status(), core::LockStatus::kSearching);
}

TEST(EdgeHybridCalibrated, MsbAllOnesClampsToFullPeriod) {
  core::ProposedDelayLine line(kTech, {256, 2});
  core::HybridCalibratedDpwm dpwm(line, 3, 6, 81'920);
  ASSERT_TRUE(dpwm.calibrate().has_value());
  const auto pwm = dpwm.generate(0, (1u << dpwm.bits()) - 1);
  EXPECT_LE(pwm.high_ps, pwm.period_ps);
  EXPECT_GT(pwm.duty(), 0.95);
}

// ---- PID boundaries ---------------------------------------------------------------

TEST(EdgePid, SetDutyClampsToMax) {
  control::PidController pid(control::PidParams{}, 100, 50);
  pid.set_duty(1'000);
  EXPECT_EQ(pid.duty(), 100u);
}

TEST(EdgePid, NegativeCorrectionCannotUnderflow) {
  control::PidController pid(control::PidParams{}, 100, 0);
  for (int i = 0; i < 50; ++i) {
    pid.update(-7);
  }
  EXPECT_EQ(pid.duty(), 0u);  // Clamped, no wraparound.
}

// ---- analysis boundaries -------------------------------------------------------------

TEST(EdgeMtbf, DegenerateParamsGiveInfinity) {
  analysis::MtbfParams params;
  params.t0_s = 0.0;
  EXPECT_TRUE(std::isinf(analysis::synchronizer_mtbf_s(params)));
}

TEST(EdgeReport, SingleColumnTableRenders) {
  analysis::TextTable table({"only"});
  table.add_row({"value"});
  const std::string out = table.render();
  EXPECT_NE(out.find("only"), std::string::npos);
  EXPECT_NE(out.find("value"), std::string::npos);
}

TEST(EdgeReport, CsvToUnwritablePathThrows) {
  EXPECT_THROW(
      analysis::write_csv("/nonexistent_dir_zzz/x.csv", "x", {1.0},
                          {{"a", {1.0}}}),
      std::runtime_error);
}

// ---- netlist boundaries ----------------------------------------------------------------

TEST(EdgeNetlist, EmptyOutputsGiveZeroCriticalPath) {
  synth::Netlist net;
  net.add_input("a");
  EXPECT_DOUBLE_EQ(
      net.critical_path_ps(kTech, cells::OperatingPoint::typical()), 0.0);
  EXPECT_TRUE(
      net.critical_path(kTech, cells::OperatingPoint::typical()).empty());
}

TEST(EdgeNetlist, InputOnlyOutputHasZeroDelay) {
  synth::Netlist net;
  const int a = net.add_input("a");
  net.mark_output(a);
  EXPECT_DOUBLE_EQ(
      net.critical_path_ps(kTech, cells::OperatingPoint::typical()), 0.0);
  EXPECT_EQ(net.node_name(a), "in:a");
}

}  // namespace
}  // namespace ddl
