// Contracts introduced by the kernel/delay-line hot-path optimization:
// transport-lane delivery (the lane-0 dedup regression), the split
// execution counters, listener registration from inside a dispatch, and
// bit-for-bit equivalence of the cached tap-delay prefix sums with a
// from-scratch accumulation on both line architectures.
#include <gtest/gtest.h>

#include <vector>

#include "ddl/cells/operating_point.h"
#include "ddl/cells/technology.h"
#include "ddl/core/conventional_line.h"
#include "ddl/core/proposed_line.h"
#include "ddl/sim/flipflop.h"
#include "ddl/sim/gates.h"
#include "ddl/sim/simulator.h"

namespace {

using ddl::cells::OperatingPoint;
using ddl::cells::Technology;
using ddl::sim::Logic;
using ddl::sim::SignalEvent;
using ddl::sim::Simulator;

const Technology& tech() {
  static const auto kTech = Technology::i32nm_class();
  return kTech;
}

// The operating points the bit-for-bit checks sweep: the named corners plus
// an off-grid point so the derating memo sees a non-default key.
std::vector<OperatingPoint> sweep_ops() {
  return {OperatingPoint::typical(), OperatingPoint::fast_process_only(),
          OperatingPoint::slow_process_only(),
          OperatingPoint{ddl::cells::ProcessCorner::kTypical, 0.93, 71.0}};
}

// ---- Transport lane (driver 0) --------------------------------------------

TEST(TransportLane, SameValueReScheduleIsDelivered) {
  // Lane 0 is the verbatim testbench lane: 1@10 ... 1@30 must both be
  // delivered even though lane 0 already scheduled a 1, because an inertial
  // lane drove the signal low in between.  The seed kernel's same-value
  // dedup swallowed the second event.
  Simulator sim;
  const auto s = sim.add_signal("s", Logic::k0);
  const auto lane = sim.attach_driver(s);

  sim.schedule(s, Logic::k1, 10);               // transport
  sim.schedule_lane(s, Logic::k0, 20, lane);    // inertial lane drives low
  sim.schedule(s, Logic::k1, 30);               // transport re-drive of 1

  std::vector<std::pair<ddl::sim::Time, Logic>> seen;
  sim.on_change(s, [&](const SignalEvent& event) {
    seen.emplace_back(event.time, event.new_value);
  });
  sim.run();

  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0], (std::pair<ddl::sim::Time, Logic>{10, Logic::k1}));
  EXPECT_EQ(seen[1], (std::pair<ddl::sim::Time, Logic>{20, Logic::k0}));
  EXPECT_EQ(seen[2], (std::pair<ddl::sim::Time, Logic>{30, Logic::k1}));
  EXPECT_EQ(sim.value(s), Logic::k1);
}

TEST(TransportLane, InertialLaneStillDedupsSameValue) {
  // The inertial same-value no-op is unchanged: re-scheduling 1 on the same
  // lane keeps the earlier event's timing and enqueues nothing new.
  Simulator sim;
  const auto s = sim.add_signal("s", Logic::k0);
  const auto lane = sim.attach_driver(s);

  sim.schedule_lane(s, Logic::k1, 10, lane);
  sim.schedule_lane(s, Logic::k1, 30, lane);  // no-op: same value, same lane

  sim.run();
  EXPECT_EQ(sim.counters().signal_events, 1u);
  EXPECT_EQ(sim.counters().cancelled_inertial, 0u);
}

// ---- Split execution counters ---------------------------------------------

TEST(KernelCounters, SplitSumsToExecutedEvents) {
  Simulator sim;
  ddl::sim::NetlistContext ctx{&sim, &tech(), OperatingPoint::typical()};
  const auto in = sim.add_signal("in", Logic::k0);
  ddl::sim::make_buffer_chain(ctx, in, 8);
  const auto clk = sim.add_signal("clk");
  ddl::sim::make_clock(sim, clk, 1'000);

  sim.schedule(in, Logic::k1, 0);
  sim.run(10'000);

  const auto& counters = sim.counters();
  EXPECT_GT(counters.signal_events, 0u);
  EXPECT_GT(counters.tasks, 0u);  // clock toggles are scheduled tasks
  EXPECT_EQ(counters.total(), counters.signal_events + counters.tasks);
  EXPECT_EQ(sim.executed_events(), counters.total());
}

TEST(KernelCounters, CancelledInertialCountedSeparately) {
  // A pulse shorter than the gate delay: the buffer's inertial lane
  // reschedules to the opposite value before the first event delivers, so
  // exactly one queued event goes stale.  It must appear in
  // cancelled_inertial and NOT in executed_events (the seed never counted
  // cancelled events as executed).
  Simulator sim;
  ddl::sim::NetlistContext ctx{&sim, &tech(), OperatingPoint::typical()};
  const auto in = sim.add_signal("in", Logic::k0);
  const auto out = sim.add_signal("out");
  ddl::sim::make_buffer(ctx, in, out, 50.0);

  sim.schedule(in, Logic::k1, 10);
  sim.schedule(in, Logic::k0, 20);  // swallows the pending out=1 @ 60
  sim.run();

  EXPECT_EQ(sim.counters().cancelled_inertial, 1u);
  EXPECT_EQ(sim.executed_events(),
            sim.counters().signal_events + sim.counters().tasks);
  EXPECT_EQ(sim.value(out), Logic::k0);
}

// ---- Listener registration from inside a dispatch -------------------------

TEST(ListenerDispatch, ChangeCallbackMayRegisterRisingForSameEdge) {
  // Seed semantics: the rising list is consulted *after* the change
  // dispatch, so a rising listener registered by a change callback on the
  // same signal fires for that very edge.
  Simulator sim;
  const auto s = sim.add_signal("s", Logic::k0);
  int rising_calls = 0;
  bool registered = false;
  sim.on_change(s, [&](const SignalEvent&) {
    if (!registered) {
      registered = true;
      sim.on_rising(s, [&](const SignalEvent&) { ++rising_calls; });
    }
  });

  sim.schedule(s, Logic::k1, 10);
  sim.run();
  EXPECT_EQ(rising_calls, 1);

  sim.schedule(s, Logic::k0, 10);
  sim.schedule(s, Logic::k1, 20);
  sim.run();
  EXPECT_EQ(rising_calls, 2);
}

TEST(ListenerDispatch, ListenerAddedDuringDispatchMissesCurrentChange) {
  // A change listener registered by another change listener joins the chain
  // *behind* the dispatch snapshot: it first fires on the next change.
  Simulator sim;
  const auto s = sim.add_signal("s", Logic::k0);
  int late_calls = 0;
  sim.on_change(s, [&](const SignalEvent&) {
    if (late_calls == 0) {
      sim.on_change(s, [&](const SignalEvent&) { ++late_calls; });
    }
  });

  sim.schedule(s, Logic::k1, 10);
  sim.run();
  EXPECT_EQ(late_calls, 0);

  sim.schedule(s, Logic::k0, 10);
  sim.run();
  EXPECT_EQ(late_calls, 1);
}

// ---- Tap-delay prefix cache: proposed line --------------------------------

TEST(ProposedTapCache, FaultInvalidatesAndMatchesColdLineBitForBit) {
  // Line A queries (warming the prefix cache), then takes a fault; line B
  // is an identical die that takes the same fault before any query (cold
  // cache).  Every tap at every operating point must match bit-for-bit:
  // the suffix rebuild is the same left-to-right accumulation a fresh line
  // performs.
  ddl::core::ProposedLineConfig config{64, 2};
  ddl::core::ProposedDelayLine a(tech(), config, /*seed=*/7);
  ddl::core::ProposedDelayLine b(tech(), config, /*seed=*/7);

  const auto op = OperatingPoint::typical();
  const double before = a.tap_delay_ps(40, op);
  (void)a.tap_delays(op);  // warm the reusable buffer too

  a.inject_cell_fault(17, 1.5);
  b.inject_cell_fault(17, 1.5);

  // The fault is visible downstream of the victim and invisible upstream.
  EXPECT_GT(a.tap_delay_ps(40, op), before);
  EXPECT_EQ(a.tap_delay_ps(16, op), b.tap_delay_ps(16, op));

  for (const auto& sweep_op : sweep_ops()) {
    const std::vector<double> taps_a = a.tap_delays(sweep_op);  // copy: the
    const std::vector<double>& taps_b = b.tap_delays(sweep_op);  // buffers
    ASSERT_EQ(taps_a.size(), taps_b.size());                     // are per-line
    for (std::size_t i = 0; i < taps_a.size(); ++i) {
      EXPECT_EQ(taps_a[i], taps_b[i]) << "tap " << i;
      EXPECT_EQ(a.tap_delay_ps(i, sweep_op), taps_a[i]) << "tap " << i;
    }
  }
}

TEST(ProposedTapCache, CellDelaysScaleExactlyBySeverity) {
  ddl::core::ProposedDelayLine line(tech(), {64, 2}, /*seed=*/5);
  const auto op = OperatingPoint::typical();
  const double before = line.cell_delay_ps(9, op);
  line.inject_cell_fault(9, 2.0);
  EXPECT_EQ(line.cell_delay_ps(9, op), before * 2.0);
}

// ---- Tap-delay prefix cache: conventional line ----------------------------

TEST(ConventionalTapCache, InterleavedMutationsMatchColdLineBitForBit) {
  // Line A interleaves queries with setting changes and a fault (forcing
  // repeated partial re-extensions of the watermarked prefix); line B
  // applies the same mutations up front and queries once from cold.  Bit
  // equality across taps and operating points proves resuming from the
  // watermark equals a from-scratch accumulation.
  ddl::core::ConventionalLineConfig config{32, 4, 2};
  ddl::core::ConventionalDelayLine a(tech(), config, /*seed=*/11);
  ddl::core::ConventionalDelayLine b(tech(), config, /*seed=*/11);

  const auto op = OperatingPoint::typical();
  (void)a.tap_delay_ps(31, op);  // warm the full prefix
  a.set_setting(3, 2);
  (void)a.tap_delay_ps(10, op);  // partial re-extension past the change
  a.set_setting(20, 1);
  (void)a.tap_delay_ps(5, op);   // query below the watermark (no extension)
  a.inject_cell_fault(8, 1.25);
  (void)a.tap_delays(op);

  b.set_setting(3, 2);
  b.set_setting(20, 1);
  b.inject_cell_fault(8, 1.25);

  for (const auto& sweep_op : sweep_ops()) {
    const std::vector<double> taps_a = a.tap_delays(sweep_op);
    const std::vector<double>& taps_b = b.tap_delays(sweep_op);
    ASSERT_EQ(taps_a.size(), taps_b.size());
    for (std::size_t i = 0; i < taps_a.size(); ++i) {
      EXPECT_EQ(taps_a[i], taps_b[i]) << "tap " << i;
      EXPECT_EQ(a.tap_delay_ps(i, sweep_op), taps_a[i]) << "tap " << i;
    }
  }
}

TEST(ConventionalTapCache, FaultAndResetInvalidate) {
  ddl::core::ConventionalDelayLine line(tech(), {32, 4, 2}, /*seed=*/3);
  const auto op = OperatingPoint::typical();

  const double clean = line.tap_delay_ps(31, op);
  line.inject_cell_fault(0, 1.5);
  const double faulty = line.tap_delay_ps(31, op);
  EXPECT_GT(faulty, clean);

  line.set_setting(4, 3);
  const double longer = line.tap_delay_ps(31, op);
  EXPECT_GT(longer, faulty);
  EXPECT_EQ(line.tap_delay_ps(3, op), line.tap_delay_ps(3, op));

  line.reset_settings();
  EXPECT_EQ(line.tap_delay_ps(31, op), faulty);  // settings gone, fault stays
}

}  // namespace
