#include "ddl/core/hash.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

// These hashes feed byte-stability contracts: campaign journal
// fingerprints, content-addressed job ids, wire-frame checksums, and
// seed-reproducible chaos storms.  The exact output words are pinned so
// a constant or algorithm drift shows up as a test failure before it
// silently invalidates on-disk state.

namespace ddl::core {
namespace {

TEST(CoreHashTest, SplitMix64KnownStream) {
  // Reference stream for state = 0 (Steele/Lea/Flood's test vector).
  SplitMix64 rng;
  EXPECT_EQ(rng.next(), 0xe220a8397b1dcdafull);
  EXPECT_EQ(rng.next(), 0x6e789e6aa1b965f4ull);
  EXPECT_EQ(rng.next(), 0x06c45d188009454full);
}

TEST(CoreHashTest, SplitMix64FreeFunctionMatchesStruct) {
  std::uint64_t state = 42;
  SplitMix64 rng{42};
  EXPECT_EQ(splitmix64_next(state), 0xbdd732262feb6e95ull);
  EXPECT_EQ(rng.next(), 0xbdd732262feb6e95ull);
  EXPECT_EQ(state, rng.state);
}

TEST(CoreHashTest, SplitMix64MixIsTheFinalizer) {
  // next() == mix(state + gamma) by construction.
  std::uint64_t state = 7;
  const std::uint64_t expected = splitmix64_mix(7 + kSplitMix64Gamma);
  EXPECT_EQ(splitmix64_next(state), expected);
}

TEST(CoreHashTest, SplitMix64BelowAndUnitRanges) {
  SplitMix64 rng{123};
  EXPECT_EQ(rng.below(0), 0u);
  for (int i = 0; i < 64; ++i) {
    EXPECT_LT(rng.below(10), 10u);
    const double u = rng.unit();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(CoreHashTest, Fnv1a64PinnedWords) {
  // Note: the 64-bit offset basis is the repo's historical constant; all
  // recorded journal fingerprints and job ids were minted with it.
  EXPECT_EQ(fnv1a64(""), kFnv1a64Offset);
  EXPECT_EQ(fnv1a64(""), 0x14650fb0739d0383ull);
  EXPECT_EQ(fnv1a64("hello"), 0x005a0d15131ec7a1ull);
}

TEST(CoreHashTest, Fnv1a64IncrementalMatchesOneShot) {
  const std::uint64_t one_shot = fnv1a64("ab\nc");
  EXPECT_EQ(one_shot, 0xbd80c2ba51b122c3ull);
  EXPECT_EQ(Fnv1a64{}.update("ab").update('\n').update("c").value(), one_shot);
  EXPECT_EQ(Fnv1a64{}.update("a").update("b\nc").value(), one_shot);
}

TEST(CoreHashTest, Fnv1a32PinnedWords) {
  EXPECT_EQ(fnv1a32("", 0), kFnv1a32Offset);
  EXPECT_EQ(fnv1a32("hello", 5), 0x4f9f2cabu);
}

TEST(CoreHashTest, Hex16Rendering) {
  EXPECT_EQ(hex16(0), "0000000000000000");
  EXPECT_EQ(hex16(0xdeadbeefull), "00000000deadbeef");
  EXPECT_EQ(hex16(0xffffffffffffffffull), "ffffffffffffffff");
  EXPECT_EQ(fnv1a64_hex("hello"), "005a0d15131ec7a1");
}

}  // namespace
}  // namespace ddl::core
