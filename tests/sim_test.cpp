// Unit tests for the discrete-event kernel, gate primitives, flip-flops,
// buses and waveform capture.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "ddl/cells/technology.h"
#include "ddl/sim/bus.h"
#include "ddl/sim/flipflop.h"
#include "ddl/sim/gates.h"
#include "ddl/sim/simulator.h"
#include "ddl/sim/trace.h"

namespace ddl::sim {
namespace {

cells::Technology tech() { return cells::Technology::i32nm_class(); }

NetlistContext context(Simulator& sim, const cells::Technology& t) {
  return NetlistContext{&sim, &t, cells::OperatingPoint::typical()};
}

// ---- Logic algebra -----------------------------------------------------

struct LogicCase {
  Logic a, b, and_r, or_r, xor_r;
};

class LogicOps : public ::testing::TestWithParam<LogicCase> {};

TEST_P(LogicOps, TruthTable) {
  const auto& c = GetParam();
  EXPECT_EQ(logic_and(c.a, c.b), c.and_r);
  EXPECT_EQ(logic_or(c.a, c.b), c.or_r);
  EXPECT_EQ(logic_xor(c.a, c.b), c.xor_r);
  // Commutativity.
  EXPECT_EQ(logic_and(c.b, c.a), c.and_r);
  EXPECT_EQ(logic_or(c.b, c.a), c.or_r);
  EXPECT_EQ(logic_xor(c.b, c.a), c.xor_r);
}

INSTANTIATE_TEST_SUITE_P(
    FourState, LogicOps,
    ::testing::Values(
        LogicCase{Logic::k0, Logic::k0, Logic::k0, Logic::k0, Logic::k0},
        LogicCase{Logic::k0, Logic::k1, Logic::k0, Logic::k1, Logic::k1},
        LogicCase{Logic::k1, Logic::k1, Logic::k1, Logic::k1, Logic::k0},
        // Pessimistic-X: 0 dominates AND, 1 dominates OR, X poisons XOR.
        LogicCase{Logic::kX, Logic::k0, Logic::k0, Logic::kX, Logic::kX},
        LogicCase{Logic::kX, Logic::k1, Logic::kX, Logic::k1, Logic::kX},
        LogicCase{Logic::kX, Logic::kX, Logic::kX, Logic::kX, Logic::kX},
        LogicCase{Logic::kZ, Logic::k0, Logic::k0, Logic::kX, Logic::kX}));

TEST(Logic, NotTable) {
  EXPECT_EQ(logic_not(Logic::k0), Logic::k1);
  EXPECT_EQ(logic_not(Logic::k1), Logic::k0);
  EXPECT_EQ(logic_not(Logic::kX), Logic::kX);
  EXPECT_EQ(logic_not(Logic::kZ), Logic::kX);
}

TEST(Logic, MuxPessimisticSelect) {
  EXPECT_EQ(logic_mux(Logic::k0, Logic::k1, Logic::k0), Logic::k1);
  EXPECT_EQ(logic_mux(Logic::k1, Logic::k1, Logic::k0), Logic::k0);
  // Unknown select with agreeing inputs is still known.
  EXPECT_EQ(logic_mux(Logic::kX, Logic::k1, Logic::k1), Logic::k1);
  EXPECT_EQ(logic_mux(Logic::kX, Logic::k1, Logic::k0), Logic::kX);
}

// ---- Kernel ------------------------------------------------------------

TEST(Simulator, SignalsStartUnknown) {
  Simulator sim;
  const SignalId s = sim.add_signal("s");
  EXPECT_EQ(sim.value(s), Logic::kX);
  EXPECT_EQ(sim.name(s), "s");
}

TEST(Simulator, ScheduledDriveAppliesAtTheRightTime) {
  Simulator sim;
  const SignalId s = sim.add_signal("s", Logic::k0);
  sim.schedule(s, Logic::k1, 100);
  sim.run(99);
  EXPECT_EQ(sim.value(s), Logic::k0);
  sim.run(100);
  EXPECT_EQ(sim.value(s), Logic::k1);
  EXPECT_EQ(sim.now(), 100);
}

TEST(Simulator, EventsAtSameTimeApplyInScheduleOrder) {
  Simulator sim;
  const SignalId s = sim.add_signal("s", Logic::k0);
  const std::uint32_t d1 = sim.allocate_driver();
  const std::uint32_t d2 = sim.allocate_driver();
  sim.schedule(s, Logic::k1, 10, d1);
  sim.schedule(s, Logic::k0, 10, d2);
  sim.run();
  EXPECT_EQ(sim.value(s), Logic::k0);  // Last scheduled wins.
}

TEST(Simulator, InertialCancellationDropsStaleTransitions) {
  Simulator sim;
  const SignalId s = sim.add_signal("s", Logic::k0);
  int changes = 0;
  sim.on_change(s, [&changes](const SignalEvent&) { ++changes; });
  const std::uint32_t driver = sim.allocate_driver();
  // Same driver schedules 1 then immediately re-schedules 0 at a later
  // time: the first (stale) transition must be cancelled.
  sim.schedule(s, Logic::k1, 50, driver);
  sim.schedule(s, Logic::k0, 60, driver);
  sim.run();
  EXPECT_EQ(sim.value(s), Logic::k0);
  EXPECT_EQ(changes, 0);  // Never visibly changed from 0.
}

TEST(Simulator, OnRisingFiresOnlyOnRisingEdges) {
  Simulator sim;
  const SignalId s = sim.add_signal("s", Logic::k0);
  int rises = 0;
  sim.on_rising(s, [&rises](const SignalEvent&) { ++rises; });
  // Lane 0 is transport: the full stimulus sequence plays back.
  sim.schedule(s, Logic::k1, 10);
  sim.schedule(s, Logic::k0, 20);
  sim.schedule(s, Logic::k1, 30);
  sim.run();
  EXPECT_EQ(rises, 2);
}

TEST(Simulator, TasksRunAtScheduledTime) {
  Simulator sim;
  Time seen = -1;
  sim.schedule_task(123, [&] { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen, 123);
}

TEST(Simulator, RunForComposes) {
  Simulator sim;
  const SignalId s = sim.add_signal("s", Logic::k0);
  sim.schedule(s, Logic::k1, 1000);
  sim.run_for(400);
  EXPECT_EQ(sim.now(), 400);
  sim.run_for(700);
  EXPECT_EQ(sim.value(s), Logic::k1);
}

// ---- Gates -------------------------------------------------------------

TEST(Gates, BufferPropagatesWithTechnologyDelay) {
  Simulator sim;
  const auto t = tech();
  auto ctx = context(sim, t);
  const SignalId in = sim.add_signal("in", Logic::k0);
  const SignalId out = sim.add_signal("out", Logic::k0);
  make_buffer(ctx, in, out);
  sim.schedule(in, Logic::k1, 0);
  sim.run(39);
  EXPECT_EQ(sim.value(out), Logic::k0);
  sim.run(40);
  EXPECT_EQ(sim.value(out), Logic::k1);
}

TEST(Gates, InverterInverts) {
  Simulator sim;
  const auto t = tech();
  auto ctx = context(sim, t);
  const SignalId in = sim.add_signal("in", Logic::k0);
  const SignalId out = sim.add_signal("out");
  make_inverter(ctx, in, out);
  sim.schedule(in, Logic::k0, 0);
  sim.schedule(in, Logic::k1, 100);
  sim.run();
  EXPECT_EQ(sim.value(out), Logic::k0);
}

TEST(Gates, BufferChainAccumulatesDelay) {
  Simulator sim;
  const auto t = tech();
  auto ctx = context(sim, t);
  const SignalId in = sim.add_signal("in", Logic::k0);
  const auto taps = make_buffer_chain(ctx, in, 8);
  ASSERT_EQ(taps.size(), 8u);
  WaveformRecorder rec(sim);
  for (SignalId tap : taps) {
    rec.watch(tap);
  }
  sim.schedule(in, Logic::k1, 0);
  sim.run();
  for (std::size_t i = 0; i < taps.size(); ++i) {
    const auto rises = rec.rising_edges(taps[i]);
    ASSERT_EQ(rises.size(), 1u) << "tap " << i;
    EXPECT_EQ(rises[0], static_cast<Time>(40 * (i + 1))) << "tap " << i;
  }
}

TEST(Gates, BufferChainHonoursPerCellDelays) {
  Simulator sim;
  const auto t = tech();
  auto ctx = context(sim, t);
  const SignalId in = sim.add_signal("in", Logic::k0);
  const auto taps = make_buffer_chain(ctx, in, 3, {10.0, 20.0, 30.0});
  WaveformRecorder rec(sim);
  rec.watch(taps.back());
  sim.schedule(in, Logic::k1, 0);
  sim.run();
  EXPECT_EQ(rec.rising_edges(taps.back()).at(0), 60);
}

TEST(Gates, And2Or2Nand2Nor2Xor2Function) {
  Simulator sim;
  const auto t = tech();
  auto ctx = context(sim, t);
  const SignalId a = sim.add_signal("a", Logic::k0);
  const SignalId b = sim.add_signal("b", Logic::k0);
  const SignalId y_and = sim.add_signal("y_and");
  const SignalId y_or = sim.add_signal("y_or");
  const SignalId y_nand = sim.add_signal("y_nand");
  const SignalId y_nor = sim.add_signal("y_nor");
  const SignalId y_xor = sim.add_signal("y_xor");
  make_and2(ctx, a, b, y_and);
  make_or2(ctx, a, b, y_or);
  make_nand2(ctx, a, b, y_nand);
  make_nor2(ctx, a, b, y_nor);
  make_xor2(ctx, a, b, y_xor);
  sim.schedule(a, Logic::k1, 0);
  sim.schedule(b, Logic::k0, 0);
  sim.run();
  EXPECT_EQ(sim.value(y_and), Logic::k0);
  EXPECT_EQ(sim.value(y_or), Logic::k1);
  EXPECT_EQ(sim.value(y_nand), Logic::k1);
  EXPECT_EQ(sim.value(y_nor), Logic::k0);
  EXPECT_EQ(sim.value(y_xor), Logic::k1);
}

TEST(Gates, MuxTreeSelectsEveryInput) {
  Simulator sim;
  const auto t = tech();
  auto ctx = context(sim, t);
  std::vector<SignalId> inputs;
  for (int i = 0; i < 8; ++i) {
    inputs.push_back(
        sim.add_signal("in" + std::to_string(i), from_bool(i == 5)));
  }
  Bus sel(sim, "sel", 3);  // Bits start X so the first drive propagates.
  sel.use_driver(sim);
  const SignalId out = make_mux_tree(ctx, inputs, sel.bits(), "mt");
  for (std::uint64_t code = 0; code < 8; ++code) {
    sel.drive(sim, code);
    sim.run();
    EXPECT_EQ(sim.value(out), from_bool(code == 5)) << "code " << code;
  }
}

// ---- Flip-flops and synchronizer ----------------------------------------

TEST(FlipFlop, CapturesOnRisingEdge) {
  Simulator sim;
  const auto t = tech();
  auto ctx = context(sim, t);
  const SignalId clk = sim.add_signal("clk", Logic::k0);
  const SignalId d = sim.add_signal("d", Logic::k0);
  const SignalId q = sim.add_signal("q");
  DFlipFlop ff(ctx, clk, d, q);
  // Data settles well before the edge (setup is 40 ps).
  sim.schedule(d, Logic::k1, 100);
  sim.schedule(clk, Logic::k1, 1000);
  sim.run();
  EXPECT_EQ(sim.value(q), Logic::k1);
  EXPECT_EQ(ff.stats().capture_edges, 1u);
  EXPECT_EQ(ff.stats().setup_violations, 0u);
}

TEST(FlipFlop, SetupViolationGoesMetastableThenResolves) {
  Simulator sim;
  const auto t = tech();
  auto ctx = context(sim, t);
  const SignalId clk = sim.add_signal("clk", Logic::k0);
  const SignalId d = sim.add_signal("d", Logic::k0);
  const SignalId q = sim.add_signal("q");
  DFlipFlop ff(ctx, clk, d, q);
  WaveformRecorder rec(sim);
  rec.watch(q);
  // Data toggles 10 ps before the edge: inside the 40 ps setup window.
  sim.schedule(d, Logic::k1, 990);
  sim.schedule(clk, Logic::k1, 1000);
  sim.run();
  EXPECT_EQ(ff.stats().setup_violations, 1u);
  // Q must have passed through X before settling to a known value.
  bool saw_x = false;
  for (const Edge& edge : rec.edges(q)) {
    if (edge.value == Logic::kX) {
      saw_x = true;
    }
  }
  EXPECT_TRUE(saw_x);
  EXPECT_TRUE(is_known(sim.value(q)));
}

TEST(FlipFlop, IdealModeSkipsMetastability) {
  Simulator sim;
  const auto t = tech();
  auto ctx = context(sim, t);
  const SignalId clk = sim.add_signal("clk", Logic::k0);
  const SignalId d = sim.add_signal("d", Logic::k0);
  const SignalId q = sim.add_signal("q");
  DFlipFlop ff(ctx, clk, d, q);
  ff.set_ideal(true);
  sim.schedule(d, Logic::k1, 995);
  sim.schedule(clk, Logic::k1, 1000);
  sim.run();
  EXPECT_EQ(sim.value(q), Logic::k1);
}

TEST(Synchronizer, SecondStageOutputIsAlwaysKnownAfterTwoCycles) {
  Simulator sim;
  const auto t = tech();
  auto ctx = context(sim, t);
  const SignalId clk = sim.add_signal("clk");
  const SignalId async_in = sim.add_signal("async", Logic::k0);
  const SignalId sync_out = sim.add_signal("sync", Logic::k0);
  TwoFlopSynchronizer synchronizer(ctx, clk, async_in, sync_out, 99);
  make_clock(sim, clk, 10'000);
  WaveformRecorder rec(sim);
  rec.watch(sync_out);
  // Asynchronous toggles at awkward phases, including right at edges
  // (transport lane 0 delivers the whole pre-scheduled sequence).
  for (int i = 0; i < 50; ++i) {
    sim.schedule(async_in, (i % 2) != 0 ? Logic::k1 : Logic::k0,
                 4990 + i * 9993);
  }
  sim.run(600'000);
  // The synchronizer's contract: its output never shows X (the first stage
  // absorbs metastability within one cycle).
  for (const Edge& edge : rec.edges(sync_out)) {
    EXPECT_NE(edge.value, Logic::kX) << "at t=" << edge.time;
  }
}

TEST(Clock, GeneratesRequestedPeriod) {
  Simulator sim;
  const SignalId clk = sim.add_signal("clk");
  make_clock(sim, clk, 10'000);
  WaveformRecorder rec(sim);
  rec.watch(clk);
  sim.run(95'000);
  const auto rises = rec.rising_edges(clk);
  ASSERT_GE(rises.size(), 3u);
  EXPECT_EQ(rises[1] - rises[0], 10'000);
  EXPECT_EQ(rises[2] - rises[1], 10'000);
}

// ---- Bus ---------------------------------------------------------------

TEST(BusTest, DriveAndReadRoundTrip) {
  Simulator sim;
  Bus bus(sim, "b", 8);
  bus.use_driver(sim);
  bus.drive(sim, 0xA5);
  sim.run();
  std::uint64_t value = 0;
  ASSERT_TRUE(bus.read(sim, &value));
  EXPECT_EQ(value, 0xA5u);
}

TEST(BusTest, ReadFailsOnUnknownBits) {
  Simulator sim;
  Bus bus(sim, "b", 4);  // Bits start X.
  std::uint64_t value = 0;
  EXPECT_FALSE(bus.read(sim, &value));
  EXPECT_EQ(bus.read_or_zero(sim), 0u);
}

// ---- Waveform tools ------------------------------------------------------

TEST(Waveform, DutyCycleAndPulseWidth) {
  Simulator sim;
  const SignalId s = sim.add_signal("s", Logic::k0);
  WaveformRecorder rec(sim);
  rec.watch(s);
  // 30% duty over a 100 ps window: high [10, 40).
  sim.schedule(s, Logic::k1, 10);
  sim.schedule(s, Logic::k0, 40);
  sim.run(100);
  EXPECT_NEAR(rec.duty_cycle(s, 0, 100), 0.30, 1e-12);
  EXPECT_EQ(rec.pulse_width(s), 30);
}

TEST(Waveform, AsciiDiagramShowsLevels) {
  Simulator sim;
  const SignalId s = sim.add_signal("sig", Logic::k0);
  WaveformRecorder rec(sim);
  rec.watch(s);
  sim.schedule(s, Logic::k1, 50);
  sim.run(100);
  const std::string diagram = rec.ascii_diagram({s}, 0, 100, 10);
  EXPECT_NE(diagram.find("_"), std::string::npos);
  EXPECT_NE(diagram.find("#"), std::string::npos);
}

TEST(Waveform, VcdFileIsWritten) {
  Simulator sim;
  const SignalId s = sim.add_signal("sig", Logic::k0);
  const std::string path = ::testing::TempDir() + "ddl_sim_test.vcd";
  {
    VcdWriter vcd(sim, path);
    vcd.watch(s);
    sim.schedule(s, Logic::k1, 42);
    sim.run();
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_NE(contents.find("$timescale 1ps"), std::string::npos);
  EXPECT_NE(contents.find("#42"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ddl::sim
