// Tests for the process-level scenario sandbox: crash-taxonomy
// classification (SIGSEGV / SIGABRT / RLIMIT_AS / RLIMIT_CPU -> structured
// ScenarioError rows), worker respawn, thread-vs-process byte-identity,
// journaled crash rows replaying byte-identically on resume, cancel
// interrupts, the thread-mode abandoned-worker cap, and the journal
// writer's fail-closed disk-fault handling.
#include <gtest/gtest.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <climits>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "ddl/scenario/campaign.h"
#include "ddl/scenario/journal.h"
#include "ddl/scenario/registry.h"
#include "ddl/scenario/runner.h"
#include "ddl/scenario/sandbox.h"
#include "ddl/scenario/spec.h"

// RLIMIT_AS caps break sanitizer shadow mappings (ASan reserves terabytes
// of address space), so the allocation-pressure tests only run in plain
// builds.  RLIMIT_CPU and signal classification work under sanitizers.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define DDL_SANDBOX_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define DDL_SANDBOX_SANITIZED 1
#endif
#endif

namespace {

namespace fs = std::filesystem;

using ddl::scenario::Campaign;
using ddl::scenario::CampaignConfig;
using ddl::scenario::ExecutedScenario;
using ddl::scenario::IsolationConfig;
using ddl::scenario::IsolationMode;
using ddl::scenario::JournalIoError;
using ddl::scenario::JournalWriter;
using ddl::scenario::LoadSpec;
using ddl::scenario::ScenarioError;
using ddl::scenario::ScenarioExecutor;
using ddl::scenario::ScenarioRegistry;
using ddl::scenario::ScenarioSpec;

ScenarioSpec quick_spec(const std::string& variant, std::uint64_t seed) {
  ScenarioSpec spec;
  spec.name = "sandbox/proposed/typical/" + variant;
  spec.family = "sandbox";
  spec.seed = seed;
  spec.load = LoadSpec::constant(0.4);
  spec.periods = 900;
  spec.measure_from = 600;
  spec.allow_limit_cycling = true;
  spec.tolerance_v = 0.05;
  return spec;
}

ScenarioSpec crashing_spec(const std::string& kind) {
  ScenarioSpec spec = quick_spec("crash_" + kind, 99);
  spec.debug_crash = kind;
  return spec;
}

CampaignConfig process_config() {
  CampaignConfig config;
  config.isolation_mode = IsolationMode::kProcess;
  config.jobs = 1;
  return config;
}

std::string fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("sandbox_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

std::string fingerprint_of_one(const ScenarioSpec& spec) {
  return ddl::scenario::content_fingerprint_of({spec});
}

// ---- Crash taxonomy -------------------------------------------------------

TEST(SandboxTest, SegvBecomesAStructuredCrashRowAndTheCampaignSurvives) {
  std::vector<ScenarioSpec> specs = {quick_spec("a", 11), crashing_spec("segv"),
                                     quick_spec("b", 12)};
  const auto outcome = Campaign(process_config()).run(specs);

  ASSERT_EQ(outcome.results.size(), 3u);
  EXPECT_EQ(outcome.results[1].error, ScenarioError::kCrash);
  EXPECT_EQ(outcome.results[1].error_detail,
            "sandbox worker killed by SIGSEGV (spec " +
                fingerprint_of_one(specs[1]) + ")");
  EXPECT_EQ(outcome.results[1].failure_reason, "error:crash");
  EXPECT_EQ(outcome.results[1].attempts, 1);
  // The other scenarios completed on a respawned worker.
  EXPECT_TRUE(outcome.results[0].pass);
  EXPECT_TRUE(outcome.results[2].pass);
  EXPECT_EQ(outcome.executed, 3u);
  EXPECT_EQ(outcome.sandbox_crashes, 1u);
  EXPECT_GE(outcome.workers_respawned, 1u);
}

TEST(SandboxTest, AbortClassifiesAsCrash) {
  const std::vector<ScenarioSpec> specs = {crashing_spec("abort")};
  const auto outcome = Campaign(process_config()).run(specs);
  ASSERT_EQ(outcome.results.size(), 1u);
  EXPECT_EQ(outcome.results[0].error, ScenarioError::kCrash);
  EXPECT_EQ(outcome.results[0].error_detail,
            "sandbox worker killed by SIGABRT (spec " +
                fingerprint_of_one(specs[0]) + ")");
  EXPECT_EQ(outcome.sandbox_crashes, 1u);
}

#if !defined(DDL_SANDBOX_SANITIZED)
TEST(SandboxTest, MemLimitKillClassifiesAsResourceLimit) {
  CampaignConfig config = process_config();
  config.limits.mem_limit_mb = 256;
  const std::vector<ScenarioSpec> specs = {crashing_spec("oom"),
                                           quick_spec("after_oom", 21)};
  const auto outcome = Campaign(config).run(specs);
  ASSERT_EQ(outcome.results.size(), 2u);
  EXPECT_EQ(outcome.results[0].error, ScenarioError::kResourceLimit);
  EXPECT_EQ(outcome.results[0].error_detail,
            "sandbox worker exceeded RLIMIT_AS (256 MiB): allocation failed");
  EXPECT_TRUE(outcome.results[1].pass);
  EXPECT_EQ(outcome.resource_kills, 1u);
  EXPECT_GE(outcome.workers_respawned, 1u);
}
#endif

TEST(SandboxTest, CpuLimitKillClassifiesAsResourceLimit) {
  CampaignConfig config = process_config();
  config.limits.cpu_limit_s = 1;
  config.timeout_ms = 60'000;  // The RLIMIT must fire before the watchdog.
  const std::vector<ScenarioSpec> specs = {crashing_spec("spin")};
  const auto outcome = Campaign(config).run(specs);
  ASSERT_EQ(outcome.results.size(), 1u);
  EXPECT_EQ(outcome.results[0].error, ScenarioError::kResourceLimit);
  EXPECT_EQ(outcome.results[0].error_detail,
            "sandbox worker exceeded RLIMIT_CPU (1 s): SIGXCPU");
  EXPECT_EQ(outcome.resource_kills, 1u);
}

// ---- Byte-identity across isolation modes ---------------------------------

TEST(SandboxTest, ThreadAndProcessStreamsAreByteIdentical) {
  std::vector<ScenarioSpec> specs = {quick_spec("a", 11), quick_spec("b", 12),
                                     quick_spec("c", 13)};
  CampaignConfig thread_config = process_config();
  thread_config.isolation_mode = IsolationMode::kThread;
  const auto via_thread = Campaign(thread_config).run(specs);
  const auto via_process = Campaign(process_config()).run(specs);
  EXPECT_EQ(via_thread.jsonl(), via_process.jsonl());
  EXPECT_EQ(via_thread.health_jsonl, via_process.health_jsonl);

  CampaignConfig four = process_config();
  four.jobs = 4;
  const auto sharded = Campaign(four).run(specs);
  EXPECT_EQ(via_process.jsonl(), sharded.jsonl());
}

TEST(SandboxTest, ProcessTimeoutRowsMatchThreadModeByteForByte) {
  ScenarioSpec hang = quick_spec("hang", 31);
  hang.debug_hang_ms = 30'000;
  hang.debug_hang_attempts = INT_MAX;
  CampaignConfig process = process_config();
  process.timeout_ms = 200;
  process.max_retries = 1;
  process.backoff_base_ms = 1;
  CampaignConfig thread = process;
  thread.isolation_mode = IsolationMode::kThread;
  thread.grace_ms = 0;

  const auto via_process = Campaign(process).run({hang});
  const auto via_thread = Campaign(thread).run({hang});
  ASSERT_EQ(via_process.results.size(), 1u);
  EXPECT_EQ(via_process.results[0].error, ScenarioError::kTimeout);
  EXPECT_EQ(via_process.jsonl(), via_thread.jsonl());
  EXPECT_EQ(via_process.timeouts, 1u);
  EXPECT_EQ(via_thread.timeouts, 1u);
}

// ---- Durability -----------------------------------------------------------

TEST(SandboxTest, JournaledCrashRowsResumeByteIdentically) {
  const std::string dir = fresh_dir("crash_resume");
  std::vector<ScenarioSpec> specs = {quick_spec("a", 11), crashing_spec("segv"),
                                     quick_spec("b", 12)};
  CampaignConfig first = process_config();
  first.journal_dir = dir;
  const auto original = Campaign(first).run(specs);
  EXPECT_EQ(original.sandbox_crashes, 1u);

  CampaignConfig second = first;
  second.resume = true;
  const auto resumed = Campaign(second).run(specs);
  EXPECT_EQ(resumed.executed, 0u);
  EXPECT_EQ(resumed.resumed, specs.size());
  EXPECT_EQ(resumed.jsonl(), original.jsonl());
  EXPECT_EQ(resumed.health_jsonl, original.health_jsonl);
  // The crash row was replayed from the journal, not re-derived: the
  // resumed run forked no sandbox worker at all.
  EXPECT_EQ(resumed.sandbox_crashes, 0u);
  EXPECT_EQ(resumed.workers_respawned, 0u);
}

// ---- Dispatch units -------------------------------------------------------

TEST(SandboxTest, GroupCrashDegradesToPerScenarioRetries) {
  // A multi-spec unit ships whole into one sandbox worker.  With a
  // crashing member the worker dies mid-group; every member must come
  // back as its own row (crash for the guilty spec, results for the rest)
  // rather than being lost or duplicated.
  std::vector<ScenarioSpec> specs = ScenarioRegistry::builtin().expand("yield");
  ASSERT_GE(specs.size(), 2u);
  specs.resize(2);
  specs.push_back(crashing_spec("segv"));

  IsolationConfig isolation;
  isolation.mode = IsolationMode::kProcess;
  ScenarioExecutor executor(isolation);
  std::vector<ExecutedScenario> runs = executor.run_unit(specs);
  ASSERT_EQ(runs.size(), specs.size());
  EXPECT_EQ(runs[2].result.error, ScenarioError::kCrash);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(runs[i].result.error, ScenarioError::kNone) << i;
    EXPECT_FALSE(runs[i].line.empty()) << i;
  }

  // The degraded rows byte-match a clean single-spec execution.
  ScenarioExecutor clean(isolation);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(runs[i].line, clean.run_one(specs[i]).line) << i;
  }
}

TEST(SandboxTest, InterruptWithdrawsTheInFlightUnit) {
  IsolationConfig isolation;
  isolation.mode = IsolationMode::kProcess;
  isolation.timeout_ms = 30'000;
  ScenarioExecutor executor(isolation);

  ScenarioSpec hang = quick_spec("hang_for_cancel", 41);
  hang.debug_hang_ms = 30'000;
  hang.debug_hang_attempts = INT_MAX;
  std::thread canceller([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    executor.interrupt();
  });
  std::vector<ExecutedScenario> runs = executor.run_unit({hang});
  canceller.join();
  EXPECT_TRUE(runs.empty());
  EXPECT_TRUE(executor.interrupted());

  // A re-armed executor respawns its worker and runs normally.
  executor.clear_interrupt();
  const ExecutedScenario after = executor.run_one(quick_spec("after", 42));
  EXPECT_EQ(after.result.error, ScenarioError::kNone);
  EXPECT_TRUE(after.result.pass);
}

// ---- Thread-mode abandoned-worker cap -------------------------------------

TEST(SandboxTest, AbandonedWorkerCapFailsFastInThreadMode) {
  ScenarioSpec first_hang = quick_spec("hang_one", 51);
  first_hang.debug_hang_ms = 30'000;
  first_hang.debug_hang_attempts = INT_MAX;
  ScenarioSpec second_hang = quick_spec("hang_two", 52);
  second_hang.debug_hang_ms = 30'000;
  second_hang.debug_hang_attempts = INT_MAX;

  CampaignConfig config;
  config.isolation_mode = IsolationMode::kThread;
  config.jobs = 1;
  config.timeout_ms = 100;
  config.max_retries = 0;
  config.backoff_base_ms = 1;
  config.grace_ms = 0;  // Abandon immediately on timeout.
  config.max_abandoned = 1;
  const auto outcome =
      Campaign(config).run({first_hang, second_hang, quick_spec("ok", 53)});

  ASSERT_EQ(outcome.results.size(), 3u);
  EXPECT_EQ(outcome.results[0].error, ScenarioError::kTimeout);
  // The second hang would need another detached thread past the cap: it
  // fails fast as kWorkerLost instead of starting one.  The cap is
  // fail-closed -- every later scenario refuses too (a runner drowning in
  // leaked threads must stop digging), which is what the structured rows
  // and the `abandoned_threads` report are for.
  EXPECT_EQ(outcome.results[1].error, ScenarioError::kWorkerLost);
  EXPECT_EQ(outcome.results[1].error_detail,
            "abandoned-worker cap (1) reached; refusing to start another "
            "attempt thread");
  EXPECT_EQ(outcome.results[1].attempts, 0);
  EXPECT_EQ(outcome.results[2].error, ScenarioError::kWorkerLost);
  EXPECT_EQ(outcome.abandoned_threads, 1u);
  EXPECT_GE(outcome.workers_lost, 2u);
}

// ---- Journal disk faults --------------------------------------------------

TEST(SandboxTest, JournalWriterSurfacesDiskFaultsAsStructuredErrors) {
  const std::string dir = fresh_dir("disk_fault");
  // /dev/full accepts opens and fails every write with ENOSPC -- the
  // classic full-disk stand-in.
  std::error_code ec;
  fs::create_symlink("/dev/full", ddl::scenario::journal_path(dir), ec);
  ASSERT_FALSE(ec) << ec.message();

  JournalWriter writer(dir, "fingerprint", 1, 0, /*append=*/false);
  try {
    writer.record("{\"name\": \"x\"}", {});
    FAIL() << "record() on a full disk must throw JournalIoError";
  } catch (const JournalIoError& e) {
    EXPECT_EQ(e.error_number(), ENOSPC);
    EXPECT_NE(std::string(e.what()).find("journal write failed"),
              std::string::npos)
        << e.what();
  }
}

TEST(SandboxTest, HealthJournalFaultsFailBeforeTheCommitRecord) {
  const std::string dir = fresh_dir("disk_fault_health");
  std::error_code ec;
  fs::create_symlink("/dev/full", ddl::scenario::health_journal_path(dir), ec);
  ASSERT_FALSE(ec) << ec.message();

  JournalWriter writer(dir, "fingerprint", 1, 0, /*append=*/false);
  EXPECT_THROW(writer.record("{\"name\": \"x\"}", {"{\"event\": \"y\"}"}),
               JournalIoError);
  // Fail-closed WAL ordering: the health append failed, so the commit
  // record must not exist -- no torn half-scenario on a later resume.
  EXPECT_TRUE(
      ddl::scenario::read_file(ddl::scenario::journal_path(dir)).empty());
}

}  // namespace
