// Equivalence tests: the gate-level netlists of both calibrated schemes
// against their behavioral models -- the netlists are ground truth, the
// behavioral models are what the analyses run on, and they must agree.
#include <gtest/gtest.h>

#include "ddl/core/calibrated_dpwm.h"
#include "ddl/core/gate_level_conventional.h"
#include "ddl/core/gate_level_proposed.h"
#include "ddl/sim/flipflop.h"
#include "ddl/sim/trace.h"

namespace ddl::core {
namespace {

using cells::OperatingPoint;

const cells::Technology kTech = cells::Technology::i32nm_class();
constexpr sim::Time kPeriod = 10'000;  // 100 MHz.

struct Rig {
  sim::Simulator sim;
  sim::NetlistContext ctx;
  sim::SignalId clk;

  explicit Rig(const OperatingPoint& op)
      : ctx{&sim, &kTech, op}, clk(sim.add_signal("clk")) {
    sim::make_clock(sim, clk, kPeriod);
  }
};

// --- Proposed scheme ---------------------------------------------------

class GateProposedCorners : public ::testing::TestWithParam<OperatingPoint> {};

TEST_P(GateProposedCorners, TapSelConvergesToBehavioralLockPoint) {
  const auto op = GetParam();
  Rig rig(op);
  GateLevelProposedSystem gate(rig.ctx, rig.clk, {256, 2});
  rig.sim.run(400 * kPeriod);  // Plenty for the walk + dither.

  ProposedDelayLine line(kTech, {256, 2});
  ProposedController behavioral(line, static_cast<double>(kPeriod));
  ASSERT_TRUE(behavioral.run_to_lock(op).has_value());

  EXPECT_TRUE(gate.locked());
  // Synchronizer latency makes the gate-level walk dither a few taps wide.
  EXPECT_NEAR(static_cast<double>(gate.tap_sel()),
              static_cast<double>(behavioral.tap_sel()), 4.0)
      << to_string(op.corner);
}

INSTANTIATE_TEST_SUITE_P(
    Corners, GateProposedCorners,
    ::testing::Values(OperatingPoint::fast_process_only(),
                      OperatingPoint::typical(),
                      OperatingPoint::slow_process_only()));

TEST(GateProposed, DutySweepMatchesBehavioralSystem) {
  const auto op = OperatingPoint::typical();
  Rig rig(op);
  GateLevelProposedSystem gate(rig.ctx, rig.clk, {256, 2});
  rig.sim.run(200 * kPeriod);  // Calibrate.
  ASSERT_TRUE(gate.locked());

  ProposedDelayLine line(kTech, {256, 2});
  ProposedDpwmSystem behavioral(line, static_cast<double>(kPeriod));
  behavioral.set_environment(EnvironmentSchedule(op));
  ASSERT_TRUE(behavioral.calibrate().has_value());

  sim::WaveformRecorder rec(rig.sim);
  rec.watch(gate.out());
  for (std::uint64_t word : {48u, 96u, 144u, 192u}) {
    gate.duty().drive(rig.sim, word);
    const sim::Time from = rig.sim.now() + 2 * kPeriod;  // Select settles.
    rig.sim.run(from + 10 * kPeriod);
    const double gate_duty = rec.duty_cycle(gate.out(), from, from + 10 * kPeriod);
    const double behavioral_duty = behavioral.generate(0, word).duty();
    EXPECT_NEAR(gate_duty, behavioral_duty, 0.02) << "word " << word;
  }
}

TEST(GateProposed, SamplerGoesMetastableNearLockOnSomeDies) {
  // The physical justification for the 2-FF synchronizer: once locked, the
  // selected tap transitions right at the sampling edge.  Where exactly the
  // transition lands relative to the flop's setup/hold window depends on
  // the die's mismatch, so sweep a few dies and require that the aperture
  // is hit on at least one -- while every die still locks.
  std::uint64_t total_violations = 0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Rig rig(OperatingPoint::typical());
    GateLevelProposedSystem gate(rig.ctx, rig.clk, {256, 2}, seed);
    rig.sim.run(400 * kPeriod);
    EXPECT_TRUE(gate.locked()) << "seed " << seed;
    total_violations += gate.sampler_stats().setup_violations +
                        gate.sampler_stats().hold_violations;
  }
  EXPECT_GT(total_violations, 0u);
}

TEST(GateProposed, OutputNeverShowsX) {
  Rig rig(OperatingPoint::typical());
  GateLevelProposedSystem gate(rig.ctx, rig.clk, {256, 2});
  sim::WaveformRecorder rec(rig.sim);
  rec.watch(gate.out());
  gate.duty().drive(rig.sim, 128);
  rig.sim.run(300 * kPeriod);
  for (const auto& edge : rec.edges(gate.out())) {
    ASSERT_NE(edge.value, sim::Logic::kX) << "at t=" << edge.time;
  }
}

TEST(GateProposed, MismatchedDieStillLocksAndModulates) {
  Rig rig(OperatingPoint::typical());
  GateLevelProposedSystem gate(rig.ctx, rig.clk, {256, 2}, /*seed=*/99);
  sim::WaveformRecorder rec(rig.sim);
  rec.watch(gate.out());
  gate.duty().drive(rig.sim, 128);
  rig.sim.run(300 * kPeriod);
  EXPECT_TRUE(gate.locked());
  const double duty =
      rec.duty_cycle(gate.out(), 250 * kPeriod, 300 * kPeriod);
  EXPECT_NEAR(duty, 0.5, 0.03);
}

// --- Conventional scheme -------------------------------------------------

struct ConvCase {
  OperatingPoint op;
  double expected_shifts;  // From the behavioral analysis.
};

class GateConventionalCorners : public ::testing::TestWithParam<ConvCase> {};

TEST_P(GateConventionalCorners, ShiftsUntilTapsSample01) {
  const auto& param = GetParam();
  Rig rig(param.op);
  GateLevelConventionalSystem gate(rig.ctx, rig.clk, {64, 4, 2});
  // Locking needs shifts x 3 cycles (+ warmup); run generously.
  rig.sim.run(700 * 3 * kPeriod);
  EXPECT_TRUE(gate.locked()) << to_string(param.op.corner);
  EXPECT_FALSE(gate.at_limit());
  EXPECT_NEAR(static_cast<double>(gate.shifts()), param.expected_shifts, 4.0)
      << to_string(param.op.corner);
}

// Slow corner excluded: the minimum line delay already exceeds the period
// there (see the header comment), which edge-sampling cannot detect.
INSTANTIATE_TEST_SUITE_P(
    Corners, GateConventionalCorners,
    ::testing::Values(
        ConvCase{OperatingPoint::fast_process_only(), 187.0},
        ConvCase{OperatingPoint::typical(), 62.0}));

TEST(GateConventional, LockedLineModulatesRequestedDuty) {
  const auto op = OperatingPoint::typical();
  Rig rig(op);
  GateLevelConventionalSystem gate(rig.ctx, rig.clk, {64, 4, 2});
  rig.sim.run(250 * 3 * kPeriod);
  ASSERT_TRUE(gate.locked());

  sim::WaveformRecorder rec(rig.sim);
  rec.watch(gate.out());
  for (std::uint64_t word : {15u, 31u, 47u}) {
    gate.duty().drive(rig.sim, word);
    const sim::Time from = rig.sim.now() + 2 * kPeriod;
    rig.sim.run(from + 10 * kPeriod);
    const double duty = rec.duty_cycle(gate.out(), from, from + 10 * kPeriod);
    EXPECT_NEAR(duty, static_cast<double>(word + 1) / 64.0, 0.04)
        << "word " << word;
  }
}

TEST(GateConventional, SlowCornerSliverAliasesToTwoPeriods) {
  // At the slow corner the minimum line (64 x 160 ps = 10.24 ns) already
  // overshoots the 10 ns period.  Edge-sampling cannot see that, so the
  // controller keeps lengthening until the line spans *two* periods and
  // locks there -- an aliased lock that halves every duty cycle.  This is
  // the real-hardware hazard the behavioral model's floor-lock mitigates.
  Rig rig(cells::OperatingPoint::slow_process_only());
  GateLevelConventionalSystem gate(rig.ctx, rig.clk, {64, 4, 2});
  rig.sim.run(800 * 3 * kPeriod);
  ASSERT_TRUE(gate.locked());
  // 2T / 160 ps = 125 elements -> ~61 shifts beyond the initial 64.
  EXPECT_NEAR(static_cast<double>(gate.shifts()), 61.0, 4.0);

  // Aliasing lengthens every cell ~2x, so the line executes roughly
  // *double* the requested duty (and wraps past 100% for upper words):
  // word 15 requests 25% but executes ~50%.
  sim::WaveformRecorder rec(rig.sim);
  rec.watch(gate.out());
  gate.duty().drive(rig.sim, 15);
  const sim::Time from = rig.sim.now() + 2 * kPeriod;
  rig.sim.run(from + 10 * kPeriod);
  EXPECT_NEAR(rec.duty_cycle(gate.out(), from, from + 10 * kPeriod), 0.50,
              0.05);
}

}  // namespace
}  // namespace ddl::core
