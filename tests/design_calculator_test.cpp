// Tests for the section 4.2 design calculator: the worked 100 MHz / 6-bit
// example and the Table 6 frequency sweep.
#include <gtest/gtest.h>

#include "ddl/core/design_calculator.h"

namespace ddl::core {
namespace {

const cells::Technology kTech = cells::Technology::i32nm_class();

TEST(DesignCalculator, TechnologyData) {
  DesignCalculator calc(kTech);
  EXPECT_DOUBLE_EQ(calc.fast_buffer_ps(), 20.0);
  EXPECT_DOUBLE_EQ(calc.slow_buffer_ps(), 80.0);
  EXPECT_EQ(calc.adjustment_ratio(), 4);  // Eq 23.
}

TEST(DesignCalculator, ConventionalWorkedExample) {
  // Section 4.2.1: 100 MHz, 6 bits.
  DesignCalculator calc(kTech);
  const auto design = calc.size_conventional(DesignSpec{100.0, 6});
  EXPECT_EQ(design.line.num_cells, 64u);                    // Eq 21.
  EXPECT_EQ(design.mux_inputs, 64u);                        // Eq 22.
  EXPECT_EQ(design.line.branches, 4);                       // Eq 23.
  EXPECT_EQ(design.line.max_elements(), 256u);              // Eq 24.
  EXPECT_NEAR(design.element_delay_target_ps, 39.06, 0.01); // Eq 26.
  EXPECT_EQ(design.line.buffers_per_element, 2);            // Eq 27.
  EXPECT_DOUBLE_EQ(design.element_delay_fast_ps, 40.0);     // Eq 28.
  EXPECT_DOUBLE_EQ(design.max_line_delay_fast_ps, 10'240.0);  // Eq 29.
  EXPECT_TRUE(design.lock_guaranteed);
}

TEST(DesignCalculator, ProposedWorkedExample) {
  // Section 4.2.2: 100 MHz, 6 bits.
  DesignCalculator calc(kTech);
  const auto design = calc.size_proposed(DesignSpec{100.0, 6});
  EXPECT_EQ(design.line.num_cells, 256u);                   // Eq 30.
  EXPECT_EQ(design.mux_inputs, 256u);                       // Eq 31.
  EXPECT_NEAR(design.cell_delay_target_ps, 39.06, 0.01);    // Eq 33.
  EXPECT_EQ(design.line.buffers_per_cell, 2);               // Eq 34.
  EXPECT_DOUBLE_EQ(design.cell_delay_fast_ps, 40.0);        // Eq 35.
  EXPECT_DOUBLE_EQ(design.max_line_delay_fast_ps, 10'240.0);  // Eq 36.
  EXPECT_TRUE(design.lock_guaranteed);
  EXPECT_EQ(design.input_word_bits, 8);  // Figures 50/51 x-axis.
}

struct FrequencyCase {
  double mhz;
  int expected_buffers_per_cell;  // Table 6 row 1: 4 / 2 / 1.
};

class Table6Frequencies : public ::testing::TestWithParam<FrequencyCase> {};

TEST_P(Table6Frequencies, BuffersPerCellMatchTable6) {
  DesignCalculator calc(kTech);
  const auto design = calc.size_proposed(DesignSpec{GetParam().mhz, 6});
  EXPECT_EQ(design.line.buffers_per_cell, GetParam().expected_buffers_per_cell);
  EXPECT_EQ(design.line.num_cells, 256u);  // Resolution fixed -> same count.
  EXPECT_TRUE(design.lock_guaranteed);
}

INSTANTIATE_TEST_SUITE_P(Table6, Table6Frequencies,
                         ::testing::Values(FrequencyCase{50.0, 4},
                                           FrequencyCase{100.0, 2},
                                           FrequencyCase{200.0, 1}));

TEST(DesignCalculator, HigherResolutionMeansMoreCells) {
  DesignCalculator calc(kTech);
  for (int bits = 4; bits <= 9; ++bits) {
    const auto design = calc.size_proposed(DesignSpec{100.0, bits});
    EXPECT_EQ(design.line.num_cells, (std::size_t{4} << bits));
    EXPECT_TRUE(design.lock_guaranteed);
  }
}

TEST(DesignCalculator, LockGuaranteeHoldsAcrossSweep) {
  // Property: for any (frequency, resolution) in a realistic envelope, the
  // sized designs always cover the period at the fast corner (Eqs 29/36).
  DesignCalculator calc(kTech);
  for (double mhz : {20.0, 50.0, 100.0, 150.0, 200.0, 400.0}) {
    for (int bits : {4, 5, 6, 7, 8}) {
      const DesignSpec spec{mhz, bits};
      EXPECT_TRUE(calc.size_conventional(spec).lock_guaranteed)
          << mhz << " MHz " << bits << " bits";
      EXPECT_TRUE(calc.size_proposed(spec).lock_guaranteed)
          << mhz << " MHz " << bits << " bits";
    }
  }
}

TEST(DesignCalculator, ScaledTechnologyRetargetsTheSameRtl) {
  // The RTL-methodology argument (section 2.3): the same parameterized
  // design retargets to a faster technology by recomputing parameters.
  const cells::Technology faster = kTech.scaled(0.5, 0.7);
  DesignCalculator calc(faster);
  const auto design = calc.size_proposed(DesignSpec{100.0, 6});
  // Buffers are twice as fast -> twice as many per cell.
  EXPECT_EQ(design.line.buffers_per_cell, 4);
  EXPECT_TRUE(design.lock_guaranteed);
}

TEST(DesignCalculator, BothSchemesHaveEqualMaxDelayForFairComparison) {
  // Section 4.1's fairness criterion: equal maximum achievable delay.
  DesignCalculator calc(kTech);
  for (double mhz : {50.0, 100.0, 200.0}) {
    const DesignSpec spec{mhz, 6};
    EXPECT_DOUBLE_EQ(calc.size_conventional(spec).max_line_delay_fast_ps,
                     calc.size_proposed(spec).max_line_delay_fast_ps)
        << mhz;
  }
}

}  // namespace
}  // namespace ddl::core
