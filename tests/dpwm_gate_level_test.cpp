// Gate-level DPWM netlists checked against the behavioral models: the
// event-accurate netlist is the ground truth for Figures 17/19/21/23.
#include <gtest/gtest.h>

#include "ddl/dpwm/behavioral.h"
#include "ddl/dpwm/gate_level.h"
#include "ddl/sim/flipflop.h"
#include "ddl/sim/trace.h"

namespace ddl::dpwm {
namespace {

using sim::Logic;
using sim::SignalId;
using sim::Time;

struct Rig {
  sim::Simulator sim;
  cells::Technology tech = cells::Technology::i32nm_class();
  sim::NetlistContext ctx{&sim, &tech, cells::OperatingPoint::typical()};
};

TEST(TrailingEdge, SetThenResetMakesOnePulse) {
  Rig rig;
  const SignalId set = rig.sim.add_signal("set", Logic::k0);
  const SignalId reset = rig.sim.add_signal("reset", Logic::k0);
  const SignalId out = rig.sim.add_signal("out", Logic::k0);
  TrailingEdgeModulator mod(rig.ctx, set, reset, out);
  sim::WaveformRecorder rec(rig.sim);
  rec.watch(out);
  rig.sim.schedule(set, Logic::k1, 1'000);
  rig.sim.schedule(reset, Logic::k1, 4'000);
  rig.sim.run(10'000);
  // Pulse width = reset - set (both delayed equally by the flop).
  EXPECT_EQ(rec.pulse_width(out), 3'000);
}

TEST(TrailingEdge, SimultaneousSetWinsOverReset) {
  Rig rig;
  const SignalId set = rig.sim.add_signal("set", Logic::k0);
  const SignalId reset = rig.sim.add_signal("reset", Logic::k0);
  const SignalId out = rig.sim.add_signal("out", Logic::k0);
  TrailingEdgeModulator mod(rig.ctx, set, reset, out);
  rig.sim.schedule(set, Logic::k1, 1'000);
  rig.sim.schedule(reset, Logic::k1, 1'000);
  rig.sim.run(10'000);
  EXPECT_EQ(rig.sim.value(out), Logic::k1);
}

// Runs a gate-level counter DPWM for one full switching period at each duty
// word and compares pulse width to the behavioral model.
class GateCounterSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GateCounterSweep, MatchesBehavioralModel) {
  const std::uint64_t duty = GetParam();
  constexpr int kBits = 2;
  constexpr Time kFastPeriod = 2'500;  // Switching period 10 ns.
  constexpr Time kPeriod = kFastPeriod << kBits;

  Rig rig;
  const SignalId fast_clk = rig.sim.add_signal("fclk");
  auto net = build_counter_dpwm(rig.ctx, kBits, fast_clk);
  net.duty.drive(rig.sim, duty);
  sim::make_clock(rig.sim, fast_clk, kFastPeriod);
  sim::WaveformRecorder rec(rig.sim);
  rec.watch(net.out);
  rig.sim.run(4 * kPeriod);

  CounterDpwm behavioral(kBits, kPeriod);
  const Time expected = behavioral.generate(0, duty).high_ps;
  if (duty == 3) {
    // 100% duty: the output never falls; duty cycle over one period is 1.
    EXPECT_GT(rec.duty_cycle(net.out, kPeriod, 3 * kPeriod), 0.99);
  } else {
    // The set/reset paths have identical flop latency, so the width is
    // exact.
    const Time width = rec.pulse_width(net.out, 1, kPeriod);
    EXPECT_EQ(width, expected) << "duty word " << duty;
  }
}

INSTANTIATE_TEST_SUITE_P(AllWords, GateCounterSweep,
                         ::testing::Values(0, 1, 2, 3));

TEST(GateDelayLine, TapsRippleWithBufferDelay) {
  Rig rig;
  const SignalId clk = rig.sim.add_signal("clk");
  auto net = build_delay_line_dpwm(rig.ctx, 2, clk);
  sim::make_clock(rig.sim, clk, 10'000);
  sim::WaveformRecorder rec(rig.sim);
  for (SignalId tap : net.taps) {
    rec.watch(tap);
  }
  rig.sim.run(25'000);
  // Each tap rises one buffer delay (40 ps typical) after the previous.
  const auto t0 = rec.rising_edges(net.taps[0]);
  const auto t1 = rec.rising_edges(net.taps[1]);
  ASSERT_FALSE(t0.empty());
  ASSERT_FALSE(t1.empty());
  EXPECT_EQ(t1[0] - t0[0], 40);
}

TEST(GateDelayLine, PulseWidthTracksSelectedTap) {
  constexpr Time kPeriod = 10'000;
  Rig rig;
  const SignalId clk = rig.sim.add_signal("clk");
  // Use explicit 1 ns cells so tap delays are easy to predict.
  std::vector<double> delays(4, 1'000.0);
  auto net = build_delay_line_dpwm(rig.ctx, 2, clk, delays);
  sim::make_clock(rig.sim, clk, kPeriod);
  sim::WaveformRecorder rec(rig.sim);
  rec.watch(net.out);
  net.duty.drive(rig.sim, 2);  // Tap 2: 3 us of cell delay.
  rig.sim.run(5 * kPeriod);
  // Width = tap delay (3 ns) + mux-tree latency difference... the mux tree
  // delays the reset path but not the set path, a constant offset.
  const Time width = rec.pulse_width(net.out, 1, kPeriod);
  const Time mux_latency =
      2 * sim::from_ps(rig.tech.typical_delay_ps(cells::CellKind::kMux2));
  EXPECT_EQ(width, 3'000 + mux_latency);
}

TEST(GateHybrid, PulseWidthMatchesBehavioralUpToMuxLatency) {
  constexpr int kBits = 4;
  constexpr int kCounterBits = 2;
  constexpr Time kFastPeriod = 2'560;
  constexpr Time kPeriod = kFastPeriod << kCounterBits;

  Rig rig;
  const SignalId fast_clk = rig.sim.add_signal("fclk");
  auto net = build_hybrid_dpwm(rig.ctx, kBits, kCounterBits, fast_clk);
  net.duty.drive(rig.sim, 0b0110);
  sim::make_clock(rig.sim, fast_clk, kFastPeriod);
  sim::WaveformRecorder rec(rig.sim);
  rec.watch(net.out);
  rig.sim.run(4 * kPeriod);

  // msb = 01 -> 1 fast tick; lsb = 10 -> 3 buffer delays on the line.
  const Time mux_latency =
      2 * sim::from_ps(rig.tech.typical_delay_ps(cells::CellKind::kMux2));
  const Time buffer = sim::from_ps(40.0);
  const Time expected = kFastPeriod + 3 * buffer + mux_latency;
  EXPECT_EQ(rec.pulse_width(net.out, 1, kPeriod), expected);
}

}  // namespace
}  // namespace ddl::dpwm
