// Tests for the gate-inventory area model against thesis Tables 5 and 6.
#include <gtest/gtest.h>

#include "ddl/core/design_calculator.h"
#include "ddl/synth/delay_line_synth.h"

namespace ddl::synth {
namespace {

using cells::CellKind;

const cells::Technology kTech = cells::Technology::i32nm_class();

core::ProposedLineConfig proposed_100mhz() { return {256, 2}; }
core::ConventionalLineConfig conventional_100mhz() { return {64, 4, 2}; }

TEST(GateInventory, ArithmeticAndCounts) {
  GateInventory a;
  a.add(CellKind::kBuffer, 10);
  a.add(CellKind::kMux2, 5);
  a.add(CellKind::kDff, 0);  // No-op.
  GateInventory b;
  b.add(CellKind::kBuffer, 2);
  a += b;
  EXPECT_EQ(a.count(CellKind::kBuffer), 12u);
  EXPECT_EQ(a.count(CellKind::kMux2), 5u);
  EXPECT_EQ(a.count(CellKind::kDff), 0u);
  EXPECT_EQ(a.total_cells(), 17u);
  EXPECT_NEAR(a.area_um2(kTech), 12 * 0.645 + 5 * 0.78, 1e-9);
}

TEST(ProposedBlocks, GateCountsFollowTheArchitecture) {
  const auto config = proposed_100mhz();
  EXPECT_EQ(proposed_line_gates(config).count(CellKind::kBuffer), 512u);
  EXPECT_EQ(proposed_output_mux_gates(config).count(CellKind::kMux2), 255u);
  // Cal mux: 2-bit datapath -> exactly double the output mux.
  EXPECT_EQ(proposed_cal_mux_gates(config).count(CellKind::kMux2), 510u);
  // Mapper: 8x8 array multiplier.
  const auto mapper = proposed_mapper_gates(config);
  EXPECT_EQ(mapper.count(CellKind::kAnd2), 64u);
  EXPECT_EQ(mapper.count(CellKind::kHalfAdder), 8u);
  EXPECT_EQ(mapper.count(CellKind::kFullAdder), 48u);
}

TEST(ConventionalBlocks, GateCountsFollowTheArchitecture) {
  const auto config = conventional_100mhz();
  const auto line = conventional_line_gates(config);
  // Per cell: (1+2+3+4) elements x 2 buffers + output driver = 21 buffers.
  EXPECT_EQ(line.count(CellKind::kBuffer), 64u * 21u);
  EXPECT_EQ(line.count(CellKind::kMux2), 64u * 3u);
  const auto controller = conventional_controller_gates(config);
  // Eq 17 shift register (129) + 2 synchronizer flops.
  EXPECT_EQ(controller.count(CellKind::kDff), 131u);
}

TEST(Table5, TotalsMatchThePaperWithinFivePercent) {
  const auto proposed = synthesize_proposed(proposed_100mhz(), kTech);
  const auto conventional =
      synthesize_conventional(conventional_100mhz(), kTech);
  // Table 5: proposed 1337 um^2, conventional 2330 um^2.
  EXPECT_NEAR(proposed.total_area_um2(), 1337.0, 1337.0 * 0.05);
  EXPECT_NEAR(conventional.total_area_um2(), 2330.0, 2330.0 * 0.05);
}

TEST(Table5, ProposedIsSmallerDespiteExtraBlocks) {
  const auto proposed = synthesize_proposed(proposed_100mhz(), kTech);
  const auto conventional =
      synthesize_conventional(conventional_100mhz(), kTech);
  EXPECT_LT(proposed.total_area_um2(), conventional.total_area_um2());
}

TEST(Table5, ProposedDistributionShape) {
  const auto report = synthesize_proposed(proposed_100mhz(), kTech);
  // Paper: Line 24.7 / Output MUX 14.9 / Cal MUX 30.3 / Controller 9.8 /
  // Mapper 20.3 (percent).
  EXPECT_NEAR(report.block_percent("Delay Line"), 24.7, 3.0);
  EXPECT_NEAR(report.block_percent("Output MUX"), 14.9, 3.0);
  EXPECT_NEAR(report.block_percent("Calibration MUX"), 30.3, 3.0);
  EXPECT_NEAR(report.block_percent("Controller"), 9.8, 3.0);
  EXPECT_NEAR(report.block_percent("Mapper"), 20.3, 3.0);
  // Ordering: cal mux > line > mapper > output mux > controller.
  EXPECT_GT(report.block_percent("Calibration MUX"),
            report.block_percent("Delay Line"));
  EXPECT_GT(report.block_percent("Delay Line"),
            report.block_percent("Mapper"));
  EXPECT_GT(report.block_percent("Mapper"),
            report.block_percent("Output MUX"));
  EXPECT_GT(report.block_percent("Output MUX"),
            report.block_percent("Controller"));
}

TEST(Table5, ConventionalDistributionShape) {
  const auto report =
      synthesize_conventional(conventional_100mhz(), kTech);
  // Paper: Line 52.4 / Output MUX 3 / Controller 46.6 (percent).
  EXPECT_NEAR(report.block_percent("Delay Line"), 52.4, 4.0);
  EXPECT_NEAR(report.block_percent("Output MUX"), 3.0, 2.0);
  EXPECT_NEAR(report.block_percent("Controller"), 46.6, 4.0);
  // The thesis's qualitative claims: the tunable line and the huge shift
  // register dominate; the mux is negligible.
  EXPECT_GT(report.block_percent("Delay Line"), 45.0);
  EXPECT_GT(report.block_percent("Controller"), 40.0);
  EXPECT_LT(report.block_percent("Output MUX"), 6.0);
}

struct Table6Case {
  double mhz;
  int buffers_per_cell;
  double paper_total_um2;
  double paper_line_pct;
};

class Table6Sweep : public ::testing::TestWithParam<Table6Case> {};

TEST_P(Table6Sweep, TotalsAndLineShareMatchThePaper) {
  const auto& param = GetParam();
  core::DesignCalculator calc(kTech);
  const auto design = calc.size_proposed(core::DesignSpec{param.mhz, 6});
  ASSERT_EQ(design.line.buffers_per_cell, param.buffers_per_cell);
  const auto report = synthesize_proposed(design.line, kTech);
  EXPECT_NEAR(report.total_area_um2(), param.paper_total_um2,
              param.paper_total_um2 * 0.05);
  EXPECT_NEAR(report.block_percent("Delay Line"), param.paper_line_pct, 3.0);
}

// Table 6 rows: 50 MHz / 100 MHz / 200 MHz.
INSTANTIATE_TEST_SUITE_P(Table6, Table6Sweep,
                         ::testing::Values(Table6Case{50.0, 4, 1675.0, 39.5},
                                           Table6Case{100.0, 2, 1337.0, 24.7},
                                           Table6Case{200.0, 1, 1172.0, 14.1}));

TEST(Table6, AreaDecreasesWithFrequency) {
  core::DesignCalculator calc(kTech);
  double previous = 1e18;
  for (double mhz : {50.0, 100.0, 200.0}) {
    const auto design = calc.size_proposed(core::DesignSpec{mhz, 6});
    const double area = synthesize_proposed(design.line, kTech).total_area_um2();
    EXPECT_LT(area, previous) << mhz;
    previous = area;
  }
}

TEST(Table6, OnlyTheLineVariesAcrossFrequencies) {
  // Section 4.3: "the only difference between multiple frequencies is the
  // number of buffers combined together in one delay cell."
  const auto at_50 = synthesize_proposed({256, 4}, kTech);
  const auto at_200 = synthesize_proposed({256, 1}, kTech);
  for (const char* block :
       {"Output MUX", "Calibration MUX", "Controller", "Mapper"}) {
    EXPECT_DOUBLE_EQ(at_50.find(block)->area_um2, at_200.find(block)->area_um2)
        << block;
  }
  EXPECT_DOUBLE_EQ(at_50.find("Delay Line")->area_um2,
                   4.0 * at_200.find("Delay Line")->area_um2);
}

TEST(Reports, TableRenderingContainsBlocksAndTotal) {
  const auto report = synthesize_proposed(proposed_100mhz(), kTech);
  const std::string table = report.to_table();
  EXPECT_NE(table.find("Delay Line"), std::string::npos);
  EXPECT_NE(table.find("Mapper"), std::string::npos);
  EXPECT_NE(table.find("TOTAL"), std::string::npos);
}

TEST(Reports, FindReturnsNullForUnknownBlock) {
  const auto report = synthesize_proposed(proposed_100mhz(), kTech);
  EXPECT_EQ(report.find("No Such Block"), nullptr);
  EXPECT_DOUBLE_EQ(report.block_percent("No Such Block"), 0.0);
}

}  // namespace
}  // namespace ddl::synth
