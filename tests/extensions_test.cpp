// Tests for the extension modules: calibrated hybrid DPWM, multi-phase
// interleaved buck, and the DVFS voltage-mode manager.
#include <gtest/gtest.h>

#include <cmath>

#include "ddl/analog/multiphase.h"
#include "ddl/control/dvfs.h"
#include "ddl/core/hybrid_calibrated.h"
#include "ddl/dpwm/behavioral.h"

namespace ddl {
namespace {

using cells::OperatingPoint;

const cells::Technology kTech = cells::Technology::i32nm_class();

// ---- Calibrated hybrid DPWM -----------------------------------------------

TEST(HybridCalibrated, SizingSplitsBitsAcrossCounterAndLine) {
  // 13 bits at 1 MHz: 7 from the counter (128 MHz fast clock), 6 from the
  // line against the 7.8 ns fast period.
  const auto design = core::size_hybrid_calibrated(kTech, 1.0, 13, 7);
  EXPECT_EQ(design.counter_bits, 7);
  EXPECT_DOUBLE_EQ(design.fast_clock_mhz, 128.0);
  EXPECT_EQ(design.line.num_cells, 256u);  // 2^6 x corner ratio 4.
  EXPECT_EQ(design.line_word_bits, 8);
  EXPECT_THROW(core::size_hybrid_calibrated(kTech, 1.0, 13, 0),
               std::invalid_argument);
  EXPECT_THROW(core::size_hybrid_calibrated(kTech, 1.0, 13, 13),
               std::invalid_argument);
}

TEST(HybridCalibrated, RejectsNonDivisiblePeriod) {
  core::ProposedDelayLine line(kTech, {256, 2});
  EXPECT_THROW(core::HybridCalibratedDpwm(line, 3, 6, 1'000'001),
               std::invalid_argument);
}

class HybridCalibratedCorners
    : public ::testing::TestWithParam<OperatingPoint> {};

TEST_P(HybridCalibratedCorners, DutyTracksRequestAfterCalibration) {
  // 3 counter bits + 8-bit line word at 100 MHz-equivalent switching:
  // switching period = 8 x 10.24 ns fast ticks.
  const sim::Time fast = 10'240;
  const sim::Time period = fast << 3;
  core::DesignCalculator calc(kTech);
  const auto line_design = calc.size_proposed(
      core::DesignSpec{1e6 / static_cast<double>(fast), 6});
  core::ProposedDelayLine line(kTech, line_design.line);
  core::HybridCalibratedDpwm dpwm(line, 3, 6, period);
  dpwm.set_environment(core::EnvironmentSchedule(GetParam()));
  ASSERT_TRUE(dpwm.calibrate().has_value());
  EXPECT_EQ(dpwm.bits(), 11);  // 3 + 8.

  const std::uint64_t full = std::uint64_t{1} << dpwm.bits();
  for (std::uint64_t word = full / 8; word < full; word += full / 8) {
    const auto pwm = dpwm.generate(0, word);
    const double requested = static_cast<double>(word) / static_cast<double>(full);
    EXPECT_NEAR(pwm.duty(), requested, 0.02) << "word " << word;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Corners, HybridCalibratedCorners,
    ::testing::Values(OperatingPoint::fast_process_only(),
                      OperatingPoint::typical(),
                      OperatingPoint::slow_process_only()));

TEST(HybridCalibrated, FinerThanPureCounterAtSameClock) {
  // With the same fast clock, the hybrid resolves ~2^line_bits finer steps
  // than the counter alone: adjacent duty words differ by a cell delay, not
  // a fast-clock period.
  const sim::Time fast = 10'240;
  const sim::Time period = fast << 3;
  core::ProposedDelayLine line(kTech, {256, 2});
  core::HybridCalibratedDpwm dpwm(line, 3, 6, period);
  ASSERT_TRUE(dpwm.calibrate().has_value());
  // A 4-word LSB step maps to ~2 delay cells (the mapper's shift divides
  // the word range by ~2x at this lock point).
  const auto a = dpwm.generate(0, 1024);
  const auto b = dpwm.generate(0, 1028);
  const sim::Time step = b.high_ps - a.high_ps;
  EXPECT_GT(step, 0);
  EXPECT_LT(step, fast / 16);  // Far finer than a counter tick.
}

// ---- Multi-phase buck -------------------------------------------------------

dpwm::PwmPeriod pwm_at(double duty, sim::Time period = 1'000'000) {
  dpwm::PwmPeriod p;
  p.period_ps = period;
  p.high_ps = static_cast<sim::Time>(duty * static_cast<double>(period));
  return p;
}

TEST(MultiPhase, RejectsBadParams) {
  analog::MultiPhaseParams params;
  params.phases = 0;
  EXPECT_THROW(analog::MultiPhaseBuck buck(params), std::invalid_argument);
}

TEST(MultiPhase, SteadyStateMatchesSinglePhaseAverage) {
  analog::MultiPhaseParams params;
  params.phases = 4;
  analog::MultiPhaseBuck buck(params);
  for (int i = 0; i < 4000; ++i) {
    buck.run_period(pwm_at(0.5), 1.0);
  }
  EXPECT_NEAR(buck.output_voltage(), 1.5, 0.1);
}

TEST(MultiPhase, LoadSharesAcrossPhases) {
  analog::MultiPhaseParams params;
  params.phases = 4;
  analog::MultiPhaseBuck buck(params);
  for (int i = 0; i < 4000; ++i) {
    buck.run_period(pwm_at(0.5), 2.0);
  }
  // Each phase carries ~load/N.
  for (int k = 0; k < 4; ++k) {
    EXPECT_NEAR(buck.phase_current_a(k), 0.5, 0.15) << "phase " << k;
  }
}

TEST(MultiPhase, RippleShrinksWithPhaseCount) {
  double previous_ripple = 1e9;
  for (int phases : {1, 2, 4}) {
    analog::MultiPhaseParams params;
    params.phases = phases;
    analog::MultiPhaseBuck buck(params);
    for (int i = 0; i < 3000; ++i) {
      buck.run_period(pwm_at(0.4), 1.0);
    }
    const double ripple = buck.last_period_ripple_v();
    EXPECT_LT(ripple, previous_ripple) << phases << " phases";
    previous_ripple = ripple;
  }
}

TEST(MultiPhase, RippleNearlyCancelsAtDutyEqualsKOverN) {
  // The textbook interleaving property: at duty = 1/N the phase ripples
  // cancel almost perfectly in the shared capacitor.
  analog::MultiPhaseParams params;
  params.phases = 4;
  analog::MultiPhaseBuck at_quarter(params);
  analog::MultiPhaseBuck at_odd(params);
  for (int i = 0; i < 3000; ++i) {
    at_quarter.run_period(pwm_at(0.25), 1.0);
    at_odd.run_period(pwm_at(0.375), 1.0);
  }
  EXPECT_LT(at_quarter.last_period_ripple_v(),
            0.5 * at_odd.last_period_ripple_v());
}

// ---- DVFS ---------------------------------------------------------------------

control::DigitallyControlledBuck make_loop(dpwm::DpwmModel& dpwm) {
  analog::BuckParams params;
  params.vin = 3.0;
  return control::DigitallyControlledBuck(
      analog::BuckConverter(params),
      analog::WindowAdc(analog::WindowAdcParams{1.0, 10e-3, 7}),
      control::PidController(control::PidParams{}, 1023, 341), dpwm);
}

TEST(Dvfs, RejectsUnsortedSchedule) {
  EXPECT_THROW(control::VoltageModeManager({{100, 0.9}, {50, 1.1}}),
               std::invalid_argument);
}

TEST(Dvfs, TransitionsSettleToEachTarget) {
  dpwm::CounterDpwm dpwm(10, 1'048'576);
  auto loop = make_loop(dpwm);
  control::VoltageModeManager manager(
      {{1500, 0.80}, {3000, 1.10}}, /*band=*/0.03);
  const auto reports = manager.run(loop, 4500, control::constant_load(0.4));
  ASSERT_EQ(reports.size(), 2u);
  for (const auto& report : reports) {
    EXPECT_TRUE(report.settled) << "target " << report.mode.vref_v;
    EXPECT_LT(report.settle_periods, 1200u);
  }
  // Final steady state at the last target.
  const auto metrics = loop.metrics(4200, 4500);
  EXPECT_NEAR(metrics.mean_vout, 1.10, 0.03);
}

TEST(Dvfs, ReferenceChangeIsObservableImmediately) {
  dpwm::CounterDpwm dpwm(10, 1'048'576);
  auto loop = make_loop(dpwm);
  EXPECT_DOUBLE_EQ(loop.reference_v(), 1.0);
  loop.set_reference_v(0.9);
  EXPECT_DOUBLE_EQ(loop.reference_v(), 0.9);
}

TEST(Dvfs, RunsTailAfterLastMode) {
  dpwm::CounterDpwm dpwm(10, 1'048'576);
  auto loop = make_loop(dpwm);
  control::VoltageModeManager manager({{100, 0.9}});
  manager.run(loop, 500, control::constant_load(0.2));
  EXPECT_EQ(loop.history().size(), 500u);
}

}  // namespace
}  // namespace ddl
