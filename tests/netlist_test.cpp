// Tests for the structural netlist + static timing analyzer.
#include <gtest/gtest.h>

#include "ddl/synth/netlist.h"

namespace ddl::synth {
namespace {

using cells::CellKind;
using cells::OperatingPoint;

const cells::Technology kTech = cells::Technology::i32nm_class();
const OperatingPoint kTyp = OperatingPoint::typical();

TEST(Netlist, RejectsBadConstruction) {
  Netlist net;
  const int a = net.add_input("a");
  net.add_gate(CellKind::kInverter, {a});
  EXPECT_THROW(net.add_input("late"), std::logic_error);
  EXPECT_THROW(net.add_gate(CellKind::kAnd2, {a, 99}), std::out_of_range);
  EXPECT_THROW(net.mark_output(99), std::out_of_range);
}

TEST(Netlist, CriticalPathOfAChainIsTheSumOfDelays) {
  Netlist net;
  int node = net.add_input("in");
  for (int i = 0; i < 5; ++i) {
    node = net.add_gate(CellKind::kInverter, {node});
  }
  net.mark_output(node);
  // 5 inverters x 20 ps.
  EXPECT_DOUBLE_EQ(net.critical_path_ps(kTech, kTyp), 100.0);
  EXPECT_EQ(net.critical_path(kTech, kTyp).size(), 6u);
}

TEST(Netlist, CriticalPathPicksTheSlowerBranch) {
  Netlist net;
  const int a = net.add_input("a");
  const int fast = net.add_gate(CellKind::kInverter, {a});       // 20 ps.
  const int slow1 = net.add_gate(CellKind::kXor2, {a, a});       // 45 ps.
  const int slow2 = net.add_gate(CellKind::kXor2, {slow1, a});   // 90 ps.
  const int join = net.add_gate(CellKind::kAnd2, {fast, slow2});
  net.mark_output(join);
  EXPECT_DOUBLE_EQ(net.critical_path_ps(kTech, kTyp), 90.0 + 35.0);
  const auto path = net.critical_path(kTech, kTyp);
  ASSERT_EQ(path.size(), 4u);  // a -> xor -> xor -> and.
  EXPECT_EQ(net.node_name(path.front()), "in:a");
}

TEST(Netlist, DelaysScaleWithCorner) {
  Netlist net;
  int node = net.add_input("in");
  node = net.add_gate(CellKind::kBuffer, {node});
  net.mark_output(node);
  EXPECT_DOUBLE_EQ(
      net.critical_path_ps(kTech, OperatingPoint::fast_process_only()), 20.0);
  EXPECT_DOUBLE_EQ(
      net.critical_path_ps(kTech, OperatingPoint::slow_process_only()), 80.0);
}

TEST(Generators, MultiplierSizesAndDepth) {
  for (int w : {2, 4, 8}) {
    const Netlist net = build_array_multiplier(w);
    EXPECT_EQ(net.input_count(), static_cast<std::size_t>(2 * w));
    // Depth grows roughly linearly with width (ripple-carry array); the
    // 2x2 base case is one AND + one half adder deep.
    const double d = net.critical_path_ps(kTech, kTyp);
    EXPECT_GT(d, 45.0 * w);
    EXPECT_LT(d, 250.0 * w);
  }
  EXPECT_THROW(build_array_multiplier(0), std::invalid_argument);
}

TEST(Generators, MultiplierDepthGrowsWithWidth) {
  EXPECT_LT(build_array_multiplier(4).critical_path_ps(kTech, kTyp),
            build_array_multiplier(8).critical_path_ps(kTech, kTyp));
}

TEST(Generators, IncrementerAndComparatorAreShallow) {
  const Netlist inc = build_incrementer(8);
  const Netlist cmp = build_equality_comparator(8);
  const Netlist mul = build_array_multiplier(8);
  EXPECT_LT(inc.critical_path_ps(kTech, kTyp),
            mul.critical_path_ps(kTech, kTyp));
  EXPECT_LT(cmp.critical_path_ps(kTech, kTyp),
            mul.critical_path_ps(kTech, kTyp));
}

TEST(Generators, MuxTreeDepthIsLogarithmic) {
  const double d4 = build_mux_tree_netlist(4).critical_path_ps(kTech, kTyp);
  const double d256 =
      build_mux_tree_netlist(256).critical_path_ps(kTech, kTyp);
  EXPECT_DOUBLE_EQ(d4, 2 * 50.0);
  EXPECT_DOUBLE_EQ(d256, 8 * 50.0);
  EXPECT_THROW(build_mux_tree_netlist(3), std::invalid_argument);
}

TEST(Timing, ProposedMapperClosesTimingAtThesisFrequencies) {
  // The synthesizability claim, quantified: the slowest synchronous arc
  // (the 8x8 mapper multiplier) must meet 50/100/200 MHz -- at the SLOW
  // corner, where logic is slowest.
  for (double mhz : {50.0, 100.0, 200.0}) {
    const auto report = proposed_control_timing(
        {256, 2}, kTech, OperatingPoint::slow_process_only(), mhz);
    EXPECT_TRUE(report.meets_timing) << mhz << " MHz";
    EXPECT_GT(report.slack_ps, 0.0) << mhz << " MHz";
  }
}

TEST(Timing, ReportFieldsAreConsistent) {
  const auto report =
      proposed_control_timing({256, 2}, kTech, kTyp, 100.0);
  EXPECT_NEAR(report.min_period_ps,
              report.clk_to_q_ps + report.logic_delay_ps + report.setup_ps,
              1e-9);
  EXPECT_NEAR(report.fmax_mhz, 1e6 / report.min_period_ps, 1e-6);
  EXPECT_NEAR(report.slack_ps, 10'000.0 - report.min_period_ps, 1e-9);
  EXPECT_FALSE(report.critical_through.empty());
}

TEST(Timing, ConventionalControllerIsFasterThanProposedMapper) {
  const auto conv =
      conventional_control_timing({64, 4, 2}, kTech, kTyp, 100.0);
  const auto prop = proposed_control_timing({256, 2}, kTech, kTyp, 100.0);
  EXPECT_LT(conv.logic_delay_ps, prop.logic_delay_ps);
  EXPECT_TRUE(conv.meets_timing);
}

TEST(Timing, FmaxShrinksAtTheSlowCorner) {
  const auto typ = proposed_control_timing({256, 2}, kTech, kTyp, 100.0);
  const auto slow = proposed_control_timing(
      {256, 2}, kTech, OperatingPoint::slow_process_only(), 100.0);
  EXPECT_GT(typ.fmax_mhz, slow.fmax_mhz);
}

TEST(Netlist, InventoryCountsGatesNotInputs) {
  const Netlist net = build_equality_comparator(4);
  const auto inv = net.inventory();
  EXPECT_EQ(inv.count(CellKind::kXnor2), 4u);
  EXPECT_EQ(inv.count(CellKind::kAnd2), 3u);
  EXPECT_EQ(inv.total_cells(), 7u);
}

}  // namespace
}  // namespace ddl::synth
