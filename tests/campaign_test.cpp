// Tests for the crash-safe campaign engine and its chaos companion:
// journal/resume byte-identity (including torn-tail recovery), watchdog
// isolation with bounded retry, structured error rows, seeded storm
// expansion, the delta-debugging shrinker, replay bundles, the flat-JSON
// parser / atomic writer they ride on, and the runner's CLI grammar.
#include <gtest/gtest.h>

#include <climits>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "ddl/analysis/bench_json.h"
#include "ddl/scenario/campaign.h"
#include "ddl/scenario/chaos.h"
#include "ddl/scenario/cli.h"
#include "ddl/scenario/registry.h"
#include "ddl/scenario/runner.h"
#include "ddl/scenario/spec.h"

namespace {

namespace fs = std::filesystem;

using ddl::scenario::Architecture;
using ddl::scenario::Campaign;
using ddl::scenario::CampaignConfig;
using ddl::scenario::ChaosCampaignSpec;
using ddl::scenario::FaultSpec;
using ddl::scenario::LoadSpec;
using ddl::scenario::ScenarioError;
using ddl::scenario::ScenarioRegistry;
using ddl::scenario::ScenarioRunner;
using ddl::scenario::ScenarioSpec;

ScenarioSpec quick_spec(const std::string& variant, std::uint64_t seed) {
  ScenarioSpec spec;
  spec.name = "test/proposed/typical/" + variant;
  spec.family = "test";
  spec.seed = seed;
  spec.load = LoadSpec::constant(0.4);
  spec.periods = 900;
  spec.measure_from = 600;
  spec.allow_limit_cycling = true;  // 6-bit DPWM vs the 10 mV ADC window.
  spec.tolerance_v = 0.05;
  return spec;
}

/// A supervised run with a mid-run fault, so the campaign has health events
/// to journal (no recovery expectations: the verdict stays independent).
ScenarioSpec supervised_spec() {
  ScenarioSpec spec = quick_spec("supervised", 7);
  spec.tolerance_v = 0.06;
  spec.load = LoadSpec::constant(0.5);
  spec.supervision.enabled = true;
  spec.faults = {FaultSpec::delay_cell(31, 10.0, 400)};
  return spec;
}

std::vector<ScenarioSpec> quick_batch() {
  return {quick_spec("a", 11), quick_spec("b", 12), supervised_spec(),
          quick_spec("c", 13)};
}

std::string fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("campaign_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void spit(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
}

// ---- Durability -----------------------------------------------------------

TEST(CampaignTest, MatchesThePlainRunnerStreamByteForByte) {
  const auto specs = quick_batch();
  const auto outcome = Campaign(CampaignConfig{}).run(specs);

  ScenarioRunner runner(2);
  const auto results = runner.run(specs);
  EXPECT_EQ(outcome.jsonl(), ScenarioRunner::jsonl(results));
  EXPECT_EQ(outcome.health_jsonl, ScenarioRunner::health_jsonl(results));
  EXPECT_EQ(outcome.executed, specs.size());
  EXPECT_EQ(outcome.resumed, 0u);
  EXPECT_FALSE(outcome.health_jsonl.empty());
}

TEST(CampaignTest, StreamIsIdenticalAcrossJobCounts) {
  const auto specs = quick_batch();
  CampaignConfig one;
  one.jobs = 1;
  CampaignConfig four;
  four.jobs = 4;
  const auto a = Campaign(one).run(specs);
  const auto b = Campaign(four).run(specs);
  EXPECT_EQ(a.jsonl(), b.jsonl());
  EXPECT_EQ(a.health_jsonl, b.health_jsonl);
}

TEST(CampaignTest, McYieldCampaignIsByteIdenticalAcrossJobsAndKernelPaths) {
  // The yield suite exercises the batched MC hot path; the supervised
  // runtime-fault rider must stay on the per-scenario scalar path.  The
  // stream may depend on neither sharding nor kernel choice.
  auto specs = ScenarioRegistry::builtin().expand("yield");
  specs.push_back(supervised_spec());

  CampaignConfig one;
  one.jobs = 1;
  CampaignConfig four;
  four.jobs = 4;
  const auto serial = Campaign(one).run(specs);
  const auto sharded = Campaign(four).run(specs);
  EXPECT_EQ(serial.jsonl(), sharded.jsonl());
  EXPECT_EQ(serial.health_jsonl, sharded.health_jsonl);

  // Forcing every scenario down the scalar kernel must not change a byte:
  // the 8-lane engine is an execution detail, not an output format.
  auto forced = specs;
  for (ScenarioSpec& spec : forced) {
    spec.mc_force_scalar = true;
  }
  const auto reference = Campaign(four).run(forced);
  EXPECT_EQ(serial.jsonl(), reference.jsonl());
  EXPECT_EQ(serial.health_jsonl, reference.health_jsonl);
}

TEST(CampaignTest, ResumeAfterTornJournalIsByteIdentical) {
  const auto specs = quick_batch();
  const std::string full_dir = fresh_dir("full");
  CampaignConfig config;
  config.journal_dir = full_dir;
  config.jobs = 2;
  const auto uninterrupted = Campaign(config).run(specs);

  // Simulate a kill mid-suite: two committed records survive, plus a torn
  // append (no trailing newline) the crash left behind.
  const std::string crash_dir = fresh_dir("crashed");
  const std::string journal = slurp(full_dir + "/journal.jsonl");
  std::size_t end = 0;
  for (int lines = 0; lines < 2; ++lines) {
    end = journal.find('\n', end) + 1;
  }
  spit(crash_dir + "/journal.jsonl",
       journal.substr(0, end) + R"({"schema_version": 2, "name": "test/pro)");
  spit(crash_dir + "/health_journal.jsonl",
       slurp(full_dir + "/health_journal.jsonl"));
  spit(crash_dir + "/manifest.json", slurp(full_dir + "/manifest.json"));

  CampaignConfig resume = config;
  resume.journal_dir = crash_dir;
  resume.resume = true;
  resume.jobs = 3;  // Determinism must also hold across thread counts.
  const auto resumed = Campaign(resume).run(specs);

  EXPECT_EQ(resumed.jsonl(), uninterrupted.jsonl());
  EXPECT_EQ(resumed.health_jsonl, uninterrupted.health_jsonl);
  EXPECT_EQ(resumed.resumed, 2u);
  EXPECT_EQ(resumed.executed, specs.size() - 2);

  // The journal in the resumed directory is now complete: a second resume
  // runs nothing and still reproduces the stream.
  const auto replayed = Campaign(resume).run(specs);
  EXPECT_EQ(replayed.executed, 0u);
  EXPECT_EQ(replayed.resumed, specs.size());
  EXPECT_EQ(replayed.jsonl(), uninterrupted.jsonl());
  EXPECT_EQ(replayed.health_jsonl, uninterrupted.health_jsonl);
}

TEST(CampaignTest, ResumeRefusesAMismatchedScenarioList) {
  const auto specs = quick_batch();
  const std::string dir = fresh_dir("mismatch");
  CampaignConfig config;
  config.journal_dir = dir;
  Campaign(config).run(specs);

  config.resume = true;
  auto other = specs;
  other[0].name = "test/proposed/typical/renamed";
  EXPECT_THROW(Campaign(config).run(other), std::runtime_error);

  auto fewer = specs;
  fewer.pop_back();
  EXPECT_THROW(Campaign(config).run(fewer), std::runtime_error);
}

TEST(CampaignTest, ResumeWithoutAManifestThrows) {
  CampaignConfig config;
  config.journal_dir = fresh_dir("empty");
  config.resume = true;
  EXPECT_THROW(Campaign(config).run(quick_batch()), std::runtime_error);
}

TEST(CampaignTest, DuplicateScenarioNamesAreRejected) {
  std::vector<ScenarioSpec> specs = {quick_spec("dup", 1),
                                     quick_spec("dup", 2)};
  EXPECT_THROW(Campaign(CampaignConfig{}).run(specs), std::invalid_argument);
}

// ---- Isolation ------------------------------------------------------------

TEST(CampaignIsolationTest, HungScenarioTimesOutAsStructuredErrorRow) {
  std::vector<ScenarioSpec> specs = quick_batch();
  specs[0].debug_hang_ms = 60'000;
  specs[0].debug_hang_attempts = INT_MAX;  // Every attempt hangs.

  CampaignConfig config;
  config.jobs = 2;
  // Generous deadline: healthy 900-period scenarios finish well inside it
  // even under sanitizer slowdown, while the hang never does.
  config.timeout_ms = 3000;
  config.max_retries = 1;
  config.backoff_base_ms = 1;
  const auto outcome = Campaign(config).run(specs);

  const auto& row = outcome.results[0];
  EXPECT_FALSE(row.pass);
  EXPECT_EQ(row.error, ScenarioError::kTimeout);
  EXPECT_EQ(row.verdict(), "error");
  EXPECT_EQ(row.failure_reason, "error:timeout");
  EXPECT_EQ(row.attempts, 2);
  EXPECT_EQ(outcome.timeouts, 1u);
  // The rest of the batch is unharmed.
  for (std::size_t i = 1; i < outcome.results.size(); ++i) {
    EXPECT_TRUE(outcome.results[i].pass) << outcome.results[i].name;
  }
  // Cooperative hangs join inside the grace window: no abandoned threads.
  EXPECT_EQ(outcome.abandoned_threads, 0u);
}

TEST(CampaignIsolationTest, TransientHangSucceedsOnRetry) {
  std::vector<ScenarioSpec> specs = {quick_spec("flaky", 21)};
  specs[0].debug_hang_ms = 60'000;
  specs[0].debug_hang_attempts = 1;  // Only the first attempt hangs.

  CampaignConfig config;
  config.timeout_ms = 3000;
  config.max_retries = 1;
  config.backoff_base_ms = 1;
  const auto outcome = Campaign(config).run(specs);

  EXPECT_TRUE(outcome.results[0].pass) << outcome.results[0].failure_reason;
  EXPECT_EQ(outcome.results[0].attempts, 2);
  EXPECT_EQ(outcome.retried, 1u);
  EXPECT_EQ(outcome.timeouts, 0u);
}

TEST(CampaignIsolationTest, ThrowingScenarioBecomesAnExceptionRow) {
  std::vector<ScenarioSpec> specs = {quick_spec("boom", 31),
                                     quick_spec("fine", 32)};
  specs[0].debug_throw = true;

  const auto outcome = Campaign(CampaignConfig{}).run(specs);
  const auto& row = outcome.results[0];
  EXPECT_FALSE(row.pass);
  EXPECT_EQ(row.error, ScenarioError::kException);
  EXPECT_EQ(row.failure_reason, "error:exception");
  EXPECT_NE(row.error_detail.find("debug_throw"), std::string::npos);
  EXPECT_EQ(row.attempts, 1);  // Exceptions are deterministic: no retry.
  EXPECT_EQ(outcome.exceptions, 1u);
  EXPECT_TRUE(outcome.results[1].pass);
}

TEST(CampaignIsolationTest, ErrorRowsAreJournaledAndResumable) {
  std::vector<ScenarioSpec> specs = {quick_spec("boom", 41),
                                     quick_spec("fine", 42)};
  specs[0].debug_throw = true;

  CampaignConfig config;
  config.journal_dir = fresh_dir("errors");
  const auto first = Campaign(config).run(specs);
  EXPECT_EQ(first.exceptions, 1u);

  config.resume = true;
  const auto resumed = Campaign(config).run(specs);
  EXPECT_EQ(resumed.executed, 0u);
  EXPECT_EQ(resumed.jsonl(), first.jsonl());
  EXPECT_EQ(resumed.results[0].error, ScenarioError::kException);
  EXPECT_EQ(resumed.results[0].failure_reason, "error:exception");
}

TEST(CampaignIsolationTest, AutoTimeoutScalesWithRunLength) {
  ScenarioSpec spec = quick_spec("auto", 1);
  spec.periods = 1000;
  EXPECT_EQ(ddl::scenario::auto_timeout_ms(spec), 30'000u);
  spec.periods = 10'000;
  EXPECT_EQ(ddl::scenario::auto_timeout_ms(spec), 210'000u);
}

// ---- Chaos ----------------------------------------------------------------

ChaosCampaignSpec quick_chaos() {
  ChaosCampaignSpec chaos;
  chaos.base = quick_spec("storm-base", 2026);
  chaos.base.tolerance_v = 0.06;
  chaos.base.load = LoadSpec::constant(0.5);
  chaos.storms = 6;
  chaos.seed = 99;
  return chaos;
}

TEST(ChaosTest, ExpansionIsSeededDeterministicAndValid) {
  const auto a = ddl::scenario::expand_chaos(quick_chaos());
  const auto b = ddl::scenario::expand_chaos(quick_chaos());
  ASSERT_EQ(a.size(), 6u);
  EXPECT_EQ(a[0].name, "chaos/proposed/typical/storm-00");
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name, b[i].name);
    EXPECT_EQ(a[i].family, "chaos");
    ASSERT_EQ(a[i].faults.size(), b[i].faults.size());
    EXPECT_GE(a[i].faults.size(), 1u);
    EXPECT_LE(a[i].faults.size(), 3u);
    for (std::size_t f = 0; f < a[i].faults.size(); ++f) {
      EXPECT_EQ(a[i].faults[f].kind, b[i].faults[f].kind);
      EXPECT_EQ(a[i].faults[f].victim_cell, b[i].faults[f].victim_cell);
      EXPECT_DOUBLE_EQ(a[i].faults[f].severity, b[i].faults[f].severity);
      EXPECT_EQ(a[i].faults[f].at_period, b[i].faults[f].at_period);
      EXPECT_EQ(a[i].faults[f].clear_period, b[i].faults[f].clear_period);
    }
    EXPECT_TRUE(ddl::scenario::validate(a[i]).empty());
  }

  auto reseeded = quick_chaos();
  reseeded.seed = 100;
  const auto c = ddl::scenario::expand_chaos(reseeded);
  bool any_difference = false;
  for (std::size_t i = 0; i < a.size() && !any_difference; ++i) {
    any_difference = a[i].faults.size() != c[i].faults.size() ||
                     a[i].faults[0].at_period != c[i].faults[0].at_period;
  }
  EXPECT_TRUE(any_difference);
}

TEST(ChaosTest, RejectsBasesThatCannotCarryStorms) {
  auto counter = quick_chaos();
  counter.base.architecture = Architecture::kCounter;
  EXPECT_THROW(ddl::scenario::expand_chaos(counter), std::invalid_argument);

  auto dvfs = quick_chaos();
  dvfs.base.dvfs = {{400, 0.9}};
  EXPECT_THROW(ddl::scenario::expand_chaos(dvfs), std::invalid_argument);

  auto faulted = quick_chaos();
  faulted.base.faults = {FaultSpec::delay_cell(0, 2.0)};
  EXPECT_THROW(ddl::scenario::expand_chaos(faulted), std::invalid_argument);
}

TEST(ChaosTest, SpecJsonRoundTripPreservesTheScenario) {
  ScenarioSpec spec = supervised_spec();
  spec.architecture = Architecture::kConventional;
  spec.dvfs = {{300, 0.9}, {600, 1.1}};
  spec.faults = {FaultSpec::delay_cell(3, 4.5, 100, 200),
                 FaultSpec::clock_period_step(1.25, 400)};
  spec.temp_ramp_c_per_us = 0.02;
  spec.supply_spike_v = -0.1;
  spec.spike_from_period = 50;
  spec.spike_until_period = 80;
  spec.expect_lock = false;
  spec.expect_min_lock_losses = 2;
  spec.expect_relock = true;

  const std::string line = ddl::scenario::spec_to_json(spec).to_json_line();
  const auto fields = ddl::analysis::parse_flat_json_line(line);
  ASSERT_TRUE(fields.has_value());
  const ScenarioSpec back = ddl::scenario::spec_from_json(*fields);

  EXPECT_EQ(back.name, spec.name);
  EXPECT_EQ(back.family, spec.family);
  EXPECT_EQ(back.architecture, spec.architecture);
  EXPECT_EQ(back.seed, spec.seed);
  EXPECT_EQ(back.corner.corner, spec.corner.corner);
  EXPECT_DOUBLE_EQ(back.corner.supply_v, spec.corner.supply_v);
  EXPECT_DOUBLE_EQ(back.temp_ramp_c_per_us, spec.temp_ramp_c_per_us);
  EXPECT_DOUBLE_EQ(back.supply_spike_v, spec.supply_spike_v);
  EXPECT_EQ(back.spike_from_period, spec.spike_from_period);
  EXPECT_EQ(back.load.kind, spec.load.kind);
  EXPECT_DOUBLE_EQ(back.load.level_a, spec.load.level_a);
  ASSERT_EQ(back.dvfs.size(), 2u);
  EXPECT_EQ(back.dvfs[1].at_period, 600u);
  EXPECT_DOUBLE_EQ(back.dvfs[1].vref_v, 1.1);
  EXPECT_EQ(back.periods, spec.periods);
  EXPECT_EQ(back.measure_from, spec.measure_from);
  EXPECT_DOUBLE_EQ(back.tolerance_v, spec.tolerance_v);
  EXPECT_EQ(back.expect_lock, false);
  EXPECT_EQ(back.allow_limit_cycling, spec.allow_limit_cycling);
  EXPECT_TRUE(back.supervision.enabled);
  EXPECT_EQ(back.supervision.config.watchdog_periods,
            spec.supervision.config.watchdog_periods);
  EXPECT_EQ(back.expect_min_lock_losses, 2u);
  EXPECT_TRUE(back.expect_relock);
  ASSERT_EQ(back.faults.size(), 2u);
  EXPECT_EQ(back.faults[0].kind, FaultSpec::Kind::kDelayCell);
  EXPECT_EQ(back.faults[0].victim_cell, 3u);
  EXPECT_DOUBLE_EQ(back.faults[0].severity, 4.5);
  EXPECT_EQ(back.faults[0].at_period, 100u);
  EXPECT_EQ(back.faults[0].clear_period, 200u);
  EXPECT_EQ(back.faults[1].kind, FaultSpec::Kind::kClockPeriodStep);
  EXPECT_DOUBLE_EQ(back.faults[1].severity, 1.25);
}

TEST(ChaosTest, SpecFromJsonRejectsUnknownEnumValues) {
  std::map<std::string, std::string> fields{{"architecture", "analog"}};
  EXPECT_THROW(ddl::scenario::spec_from_json(fields), std::invalid_argument);
  fields = {{"corner.process", "cryogenic"}};
  EXPECT_THROW(ddl::scenario::spec_from_json(fields), std::invalid_argument);
  fields = {{"faults.count", "1"}, {"faults.0.kind", "gremlin"}};
  EXPECT_THROW(ddl::scenario::spec_from_json(fields), std::invalid_argument);
}

/// The shrinker's fixture: one genuinely harmful fault (a stuck tap inside
/// the locked range; found by the chaos fuzzer) buried among harmless
/// faults on cells beyond the lock point.
ScenarioSpec shrinkable_failure() {
  ScenarioSpec spec = quick_spec("shrink-me", 2026);
  spec.tolerance_v = 0.06;
  spec.load = LoadSpec::constant(0.5);
  spec.periods = 1600;
  spec.measure_from = 1100;
  spec.faults = {FaultSpec::delay_cell(200, 2.0, 300),
                 FaultSpec::stuck_tap(103, 602, 1283),
                 FaultSpec::delay_cell(210, 2.0, 500, 900)};
  return spec;
}

TEST(ChaosShrinkTest, ShrinksToTheSingleHarmfulFault) {
  const auto report = ddl::scenario::shrink_failure(shrinkable_failure());
  ASSERT_TRUE(report.failing);
  EXPECT_EQ(report.failure_reason, "regulation_error");
  ASSERT_EQ(report.minimal.faults.size(), 1u);
  EXPECT_EQ(report.minimal.faults[0].kind, FaultSpec::Kind::kStuckTap);
  EXPECT_EQ(report.minimal.faults[0].victim_cell, 103u);
  EXPECT_EQ(report.removed_faults, 2u);
  EXPECT_GE(report.runs, 3u);
  EXPECT_TRUE(ddl::scenario::validate(report.minimal).empty());
}

TEST(ChaosShrinkTest, PassingSpecIsReportedNotShrunk) {
  const auto report = ddl::scenario::shrink_failure(quick_spec("healthy", 3));
  EXPECT_FALSE(report.failing);
  EXPECT_EQ(report.runs, 1u);
  EXPECT_TRUE(report.failure_reason.empty());
}

TEST(ChaosShrinkTest, ReplayBundleRoundTripsAndReproduces) {
  const auto report = ddl::scenario::shrink_failure(shrinkable_failure());
  ASSERT_TRUE(report.failing);
  const std::string document = ddl::scenario::replay_bundle_json(report);

  const auto bundle = ddl::scenario::parse_replay_bundle(document);
  EXPECT_EQ(bundle.expected_failure_reason, report.failure_reason);
  ASSERT_EQ(bundle.spec.faults.size(), report.minimal.faults.size());
  EXPECT_EQ(bundle.spec.faults[0].victim_cell,
            report.minimal.faults[0].victim_cell);
  EXPECT_EQ(bundle.spec.periods, report.minimal.periods);

  const auto outcome = ddl::scenario::replay(bundle);
  EXPECT_TRUE(outcome.reproduced) << outcome.result.failure_reason;

  EXPECT_THROW(ddl::scenario::parse_replay_bundle("{\"bundle\": \"other\"}"),
               std::invalid_argument);
  EXPECT_THROW(ddl::scenario::parse_replay_bundle("not json"),
               std::invalid_argument);
}

// ---- Flat JSON + atomic writes -------------------------------------------

TEST(FlatJsonTest, ParsesLinesAndPrettyDocumentsAlike) {
  const auto line = ddl::analysis::parse_flat_json_line(
      R"({"name": "a/b", "pass": true, "x": 1.5, "n": -3, "esc": "q\"\n"})");
  ASSERT_TRUE(line.has_value());
  EXPECT_EQ(line->at("name"), "a/b");
  EXPECT_EQ(line->at("pass"), "true");
  EXPECT_EQ(line->at("x"), "1.5");
  EXPECT_EQ(line->at("n"), "-3");
  EXPECT_EQ(line->at("esc"), "q\"\n");

  // The manifest / bundle dialect is pretty-printed: same parser.
  const auto pretty = ddl::analysis::parse_flat_json_line(
      "{\n  \"a\": 1,\n  \"b\": \"two\"\n}\n");
  ASSERT_TRUE(pretty.has_value());
  EXPECT_EQ(pretty->at("b"), "two");

  EXPECT_TRUE(ddl::analysis::parse_flat_json_line("{}").has_value());
}

TEST(FlatJsonTest, RejectsTornAndMalformedLines) {
  using ddl::analysis::parse_flat_json_line;
  EXPECT_FALSE(parse_flat_json_line("").has_value());
  EXPECT_FALSE(parse_flat_json_line(R"({"name": "torn)").has_value());
  EXPECT_FALSE(parse_flat_json_line(R"({"a": 1,)").has_value());
  EXPECT_FALSE(parse_flat_json_line(R"({"a" 1})").has_value());
  EXPECT_FALSE(parse_flat_json_line(R"({"a": 1} trailing)").has_value());
  EXPECT_FALSE(parse_flat_json_line(R"([1, 2])").has_value());
}

TEST(AtomicWriteTest, WritesAndReplacesContent) {
  const std::string dir = fresh_dir("atomic");
  const std::string path = dir + "/report.json";
  ddl::analysis::write_file_atomic(path, "first\n");
  EXPECT_EQ(slurp(path), "first\n");
  ddl::analysis::write_file_atomic(path, "second\n");
  EXPECT_EQ(slurp(path), "second\n");
  // No temp litter left behind.
  std::size_t entries = 0;
  for ([[maybe_unused]] const auto& entry : fs::directory_iterator(dir)) {
    ++entries;
  }
  EXPECT_EQ(entries, 1u);
  EXPECT_THROW(
      ddl::analysis::write_file_atomic(dir + "/no/such/dir/x.json", "x"),
      std::runtime_error);
}

// ---- CLI grammar ----------------------------------------------------------

TEST(CliTest, ParsesTheFullFlagSet) {
  const auto parsed = ddl::scenario::parse_runner_args(
      {"--suite", "regression", "--filter", "proposed", "--jobs", "4",
       "--out", "r.jsonl", "--health-out", "h.jsonl", "--journal", "dir",
       "--timeout-ms", "5000", "--retries", "3", "--backoff-ms", "10",
       "--chaos", "32", "--chaos-seed", "7", "--chaos-max-faults", "5",
       "--shrink", "--inject-hang", "250"});
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  const auto& options = parsed.options;
  EXPECT_EQ(options.suite, "regression");
  EXPECT_EQ(options.filter, "proposed");
  EXPECT_EQ(options.jobs, 4u);
  EXPECT_EQ(options.out_path, "r.jsonl");
  EXPECT_EQ(options.health_out_path, "h.jsonl");
  EXPECT_EQ(options.journal_dir, "dir");
  EXPECT_FALSE(options.resume);
  EXPECT_EQ(options.timeout_ms, 5000u);
  EXPECT_EQ(options.retries, 3);
  EXPECT_EQ(options.backoff_ms, 10u);
  EXPECT_EQ(options.chaos_storms, 32u);
  EXPECT_EQ(options.chaos_seed, 7u);
  EXPECT_EQ(options.chaos_max_faults, 5u);
  EXPECT_TRUE(options.shrink);
  EXPECT_EQ(options.inject_hang_ms, 250u);
}

TEST(CliTest, ResumeImpliesItsJournalDirectory) {
  const auto parsed =
      ddl::scenario::parse_runner_args({"--resume", "runs/nightly"});
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.options.resume);
  EXPECT_EQ(parsed.options.journal_dir, "runs/nightly");

  // Same directory twice is fine; diverging directories are not.
  EXPECT_TRUE(ddl::scenario::parse_runner_args(
                  {"--journal", "d", "--resume", "d"})
                  .ok());
  EXPECT_FALSE(ddl::scenario::parse_runner_args(
                   {"--journal", "a", "--resume", "b"})
                   .ok());
  EXPECT_FALSE(ddl::scenario::parse_runner_args(
                   {"--resume", "b", "--journal", "a"})
                   .ok());
}

TEST(CliTest, RejectsMalformedNumbers) {
  for (const std::vector<std::string>& args :
       {std::vector<std::string>{"--jobs", "oops"},
        {"--jobs", "8oops"},
        {"--jobs", "-2"},
        {"--timeout-ms", "0"},
        {"--timeout-ms", "1e3"},
        {"--retries", "99999999999999999999"},
        {"--chaos", "0"},
        {"--chaos-max-faults", "0"},
        {"--inject-hang", "0"}}) {
    const auto parsed = ddl::scenario::parse_runner_args(args);
    EXPECT_FALSE(parsed.ok()) << args[0] << " " << args[1];
    EXPECT_FALSE(parsed.error.empty());
  }
}

TEST(CliTest, RejectsMissingValuesAndUnknownFlags) {
  EXPECT_FALSE(ddl::scenario::parse_runner_args({"--suite"}).ok());
  EXPECT_FALSE(ddl::scenario::parse_runner_args({"--jobs"}).ok());
  EXPECT_FALSE(ddl::scenario::parse_runner_args({"--replay"}).ok());
  EXPECT_FALSE(ddl::scenario::parse_runner_args({"--frobnicate"}).ok());
}

TEST(CliTest, ReplayIsExclusiveWithBatchModes) {
  EXPECT_TRUE(ddl::scenario::parse_runner_args({"--replay", "b.json"}).ok());
  EXPECT_FALSE(ddl::scenario::parse_runner_args(
                   {"--replay", "b.json", "--chaos", "4"})
                   .ok());
  EXPECT_FALSE(ddl::scenario::parse_runner_args(
                   {"--replay", "b.json", "--resume", "d"})
                   .ok());
  EXPECT_FALSE(
      ddl::scenario::parse_runner_args({"--replay", "b.json", "--list"})
          .ok());
}

TEST(CliTest, StrictNumericHelpers) {
  std::uint64_t u = 0;
  EXPECT_TRUE(ddl::scenario::parse_u64("007", u));
  EXPECT_EQ(u, 7u);
  EXPECT_TRUE(ddl::scenario::parse_u64("18446744073709551615", u));
  EXPECT_FALSE(ddl::scenario::parse_u64("18446744073709551616", u));
  EXPECT_FALSE(ddl::scenario::parse_u64("", u));
  EXPECT_FALSE(ddl::scenario::parse_u64("1 ", u));
  EXPECT_FALSE(ddl::scenario::parse_u64("+1", u));
  int n = 0;
  EXPECT_TRUE(ddl::scenario::parse_count("2147483647", n));
  EXPECT_EQ(n, 2147483647);
  EXPECT_FALSE(ddl::scenario::parse_count("2147483648", n));
}

// ---- spec_from_json error paths (untrusted input must never abort) --------

TEST(SpecCheckedParseTest, CleanDocumentRoundTripsWithNoErrors) {
  ddl::scenario::ScenarioSpec spec;
  spec.name = "roundtrip/full";
  spec.family = "fault";
  spec.mc_dies = 64;
  spec.faults = {ddl::scenario::FaultSpec::delay_cell(3, 2.5, 100, 200)};
  spec.dvfs = {{500, 0.9}};
  spec.supervision.enabled = true;
  const std::string line =
      ddl::scenario::spec_to_json(spec).to_json_line();
  const auto fields = ddl::analysis::parse_flat_json_line(line);
  ASSERT_TRUE(fields.has_value());
  const auto parse = ddl::scenario::spec_from_json_checked(*fields);
  EXPECT_TRUE(parse.ok()) << parse.errors.front();
  EXPECT_EQ(parse.spec.name, spec.name);
  EXPECT_EQ(parse.spec.mc_dies, 64u);
  ASSERT_EQ(parse.spec.faults.size(), 1u);
  EXPECT_EQ(parse.spec.faults[0].clear_period, 200u);
}

TEST(SpecCheckedParseTest, MalformedAndTruncatedJsonFailTheLineParser) {
  // The parse layer in front of spec_from_json_checked: garbage and torn
  // documents come back as nullopt, never an abort or an exception.
  EXPECT_FALSE(ddl::analysis::parse_flat_json_line("not json").has_value());
  EXPECT_FALSE(ddl::analysis::parse_flat_json_line("{\"a\":1,").has_value());
  const std::string full = "{\"name\":\"x\",\"periods\":2500}";
  for (std::size_t cut = 1; cut < full.size(); ++cut) {
    const auto torn = ddl::analysis::parse_flat_json_line(full.substr(0, cut));
    if (torn.has_value()) {
      // The only prefix allowed to parse is one that is itself complete.
      EXPECT_EQ(cut, full.size());
    }
  }
}

TEST(SpecCheckedParseTest, UnknownKeysAreStructuredErrors) {
  std::map<std::string, std::string> fields{{"name", "x"},
                                            {"periosd", "2500"}};
  const auto parse = ddl::scenario::spec_from_json_checked(fields);
  ASSERT_EQ(parse.errors.size(), 1u);
  EXPECT_NE(parse.errors[0].find("periosd"), std::string::npos);
  EXPECT_NE(parse.errors[0].find("unknown key"), std::string::npos);
  // The lenient parser (replay bundles, forward compatibility) still
  // ignores it, and allow_unknown opts the checked parser into that.
  EXPECT_EQ(ddl::scenario::spec_from_json(fields).periods, 2500u);
  EXPECT_TRUE(
      ddl::scenario::spec_from_json_checked(fields, true).ok());
}

TEST(SpecCheckedParseTest, WrongTypedFieldsCollectPerKeyErrors) {
  std::map<std::string, std::string> fields{
      {"name", "x"},
      {"periods", "abc"},          // not an unsigned integer
      {"clock_mhz", "1.5oops"},    // trailing garbage
      {"expect_lock", "yes"},      // not true/false
      {"architecture", "quantum"}, // unknown enum
      {"resolution_bits", "-3"},   // negative count
  };
  const auto parse = ddl::scenario::spec_from_json_checked(fields);
  ASSERT_EQ(parse.errors.size(), 5u);
  for (const char* key :
       {"periods", "clock_mhz", "expect_lock", "architecture",
        "resolution_bits"}) {
    bool found = false;
    for (const std::string& error : parse.errors) {
      found = found || error.find(key) == 0;
    }
    EXPECT_TRUE(found) << "no error mentions " << key;
  }
  // Failed fields keep their defaults; the parse never throws.
  EXPECT_EQ(parse.spec.periods, 2500u);
  EXPECT_EQ(parse.spec.clock_mhz, 1.0);
}

TEST(SpecCheckedParseTest, IndexedKeysBeyondTheirCountAreUnknown) {
  std::map<std::string, std::string> fields{
      {"name", "x"},
      {"faults.count", "1"},
      {"faults.0.kind", "delay_cell"},
      {"faults.0.victim_cell", "3"},
      {"faults.0.severity", "2.0"},
      {"faults.0.at_period", "0"},
      {"faults.0.clear_period", "0"},
      {"faults.1.kind", "delay_cell"},  // beyond faults.count
  };
  const auto parse = ddl::scenario::spec_from_json_checked(fields);
  ASSERT_EQ(parse.errors.size(), 1u);
  EXPECT_NE(parse.errors[0].find("faults.1.kind"), std::string::npos);
  EXPECT_EQ(parse.spec.faults.size(), 1u);
}

}  // namespace
