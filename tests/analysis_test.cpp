// Tests for the analysis toolbox: linearity metrics, MTBF, Monte Carlo,
// yield sweep and report writers.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <set>
#include <stdexcept>
#include <thread>

#include "ddl/analysis/bench_json.h"
#include "ddl/analysis/linearity.h"
#include "ddl/analysis/monte_carlo.h"
#include "ddl/analysis/mtbf.h"
#include "ddl/analysis/parallel.h"
#include "ddl/analysis/report.h"
#include "ddl/analysis/sweep.h"
#include "ddl/analysis/yield.h"

namespace ddl::analysis {
namespace {

// ---- Linearity ------------------------------------------------------------

std::vector<double> perfect_ramp(std::size_t n, double step) {
  std::vector<double> curve;
  for (std::size_t i = 0; i < n; ++i) {
    curve.push_back(step * static_cast<double>(i + 1));
  }
  return curve;
}

TEST(Linearity, PerfectRampHasZeroDnlInl) {
  const auto report = analyze_linearity(perfect_ramp(64, 80.0));
  EXPECT_NEAR(report.max_dnl_lsb, 0.0, 1e-9);
  EXPECT_NEAR(report.max_inl_lsb, 0.0, 1e-9);
  EXPECT_TRUE(report.monotonic);
  EXPECT_EQ(report.zero_steps, 0u);
  EXPECT_DOUBLE_EQ(report.ideal_step, 80.0);
}

TEST(Linearity, SingleOversizedStepShowsInDnl) {
  auto curve = perfect_ramp(64, 80.0);
  for (std::size_t i = 32; i < curve.size(); ++i) {
    curve[i] += 80.0;  // Code 31->32 step doubled.
  }
  const auto report = analyze_linearity(curve);
  // The doubled step is ~1 LSB of DNL (slightly less after end-point
  // renormalization).
  EXPECT_GT(report.max_dnl_lsb, 0.85);
  EXPECT_TRUE(report.monotonic);
}

TEST(Linearity, StaircaseCountsZeroSteps) {
  // Two input words per physical tap -- the proposed scheme's slow corner.
  std::vector<double> curve;
  for (int i = 0; i < 32; ++i) {
    curve.push_back(160.0 * (i / 2 + 1));
  }
  const auto report = analyze_linearity(curve);
  EXPECT_EQ(report.zero_steps, 16u);
  EXPECT_TRUE(report.monotonic);
}

TEST(Linearity, NonMonotonicDetected) {
  auto curve = perfect_ramp(16, 10.0);
  curve[8] = curve[7] - 5.0;
  EXPECT_FALSE(analyze_linearity(curve).monotonic);
}

TEST(Linearity, BowedCurveShowsInInl) {
  std::vector<double> curve;
  for (int i = 0; i < 64; ++i) {
    const double x = static_cast<double>(i) / 63.0;
    curve.push_back(1000.0 * (x + 0.1 * x * (1.0 - x)));  // Parabolic bow.
  }
  const auto report = analyze_linearity(curve);
  EXPECT_GT(report.max_inl_lsb, 1.0);
  EXPECT_GT(report.rms_inl_lsb, 0.3);
}

TEST(Linearity, RejectsTinyCurves) {
  EXPECT_THROW(analyze_linearity({1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(dnl_lsb({1.0}), std::invalid_argument);
  EXPECT_THROW(inl_lsb({}), std::invalid_argument);
}

// ---- MTBF -------------------------------------------------------------------

TEST(Mtbf, GrowsExponentiallyWithResolutionTime) {
  MtbfParams params;
  params.resolution_time_s = 1e-9;
  const double short_res = synchronizer_mtbf_s(params);
  params.resolution_time_s = 5e-9;
  const double long_res = synchronizer_mtbf_s(params);
  EXPECT_GT(long_res, short_res * 1e10);
}

TEST(Mtbf, ExtraSynchronizerStageMultipliesMtbf) {
  const auto tech = cells::Technology::i32nm_class();
  const double one = synchronizer_mtbf_s(tech, 100e6, 50e6, 1);
  const double two = synchronizer_mtbf_s(tech, 100e6, 50e6, 2);
  const double three = synchronizer_mtbf_s(tech, 100e6, 50e6, 3);
  EXPECT_GT(two, one * 1e10);
  EXPECT_GE(three, two);  // May saturate at +inf, hence GE.
}

TEST(Mtbf, SingleStageIsUnacceptablyFrequent) {
  // With zero resolution slack a raw flop fails constantly -- the reason
  // Figure 38 adds a second stage.
  const auto tech = cells::Technology::i32nm_class();
  const double mtbf = synchronizer_mtbf_s(tech, 100e6, 50e6, 1);
  EXPECT_LT(mtbf, 1.0);  // Less than a second between failures.
}

TEST(Mtbf, FasterClockWorsensMtbf) {
  const auto tech = cells::Technology::i32nm_class();
  EXPECT_GT(synchronizer_mtbf_s(tech, 50e6, 25e6, 2),
            synchronizer_mtbf_s(tech, 200e6, 100e6, 2));
}

TEST(Mtbf, FormatsHumanReadableUnits) {
  EXPECT_NE(format_mtbf(1e12).find("years"), std::string::npos);
  EXPECT_NE(format_mtbf(10.0).find(" s"), std::string::npos);
  EXPECT_NE(format_mtbf(1e-7).find("us"), std::string::npos);
}

// ---- Monte Carlo ---------------------------------------------------------------

TEST(MonteCarlo, SummaryOfKnownSamples) {
  const auto s = summarize({1.0, 2.0, 3.0, 4.0, 5.0});
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.p50, 3.0);
  EXPECT_EQ(s.count, 5u);
  EXPECT_NEAR(s.stddev, std::sqrt(2.0), 1e-12);
}

TEST(MonteCarlo, EmptySummaryIsZero) {
  const auto s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(MonteCarlo, DieSeedsAreDistinctAndNonZero) {
  std::set<std::uint64_t> seeds;
  for (std::size_t i = 0; i < 1000; ++i) {
    const auto seed = die_seed(42, i);
    EXPECT_NE(seed, 0u);
    seeds.insert(seed);
  }
  EXPECT_EQ(seeds.size(), 1000u);
}

TEST(MonteCarlo, HarnessIsDeterministic) {
  auto experiment = [](std::uint64_t seed) {
    return static_cast<double>(seed % 1000);
  };
  const auto a = monte_carlo(100, 7, experiment);
  const auto b = monte_carlo(100, 7, experiment);
  EXPECT_DOUBLE_EQ(a.mean, b.mean);
  EXPECT_DOUBLE_EQ(a.p95, b.p95);
}

TEST(MonteCarlo, YieldCountsPredicatePasses) {
  EXPECT_DOUBLE_EQ(
      monte_carlo_yield(100, 1, [](std::uint64_t) { return true; }), 1.0);
  EXPECT_DOUBLE_EQ(
      monte_carlo_yield(100, 1, [](std::uint64_t) { return false; }), 0.0);
  const double half = monte_carlo_yield(
      10'000, 1, [](std::uint64_t seed) { return (seed & 1) != 0; });
  EXPECT_NEAR(half, 0.5, 0.03);
}

// ---- Parallel execution layer ----------------------------------------------------

/// All eight Summary fields must match exactly -- the engine's contract is
/// bit-identical results for any thread count.
void expect_identical(const Summary& a, const Summary& b) {
  EXPECT_EQ(a.mean, b.mean);
  EXPECT_EQ(a.stddev, b.stddev);
  EXPECT_EQ(a.min, b.min);
  EXPECT_EQ(a.max, b.max);
  EXPECT_EQ(a.p05, b.p05);
  EXPECT_EQ(a.p50, b.p50);
  EXPECT_EQ(a.p95, b.p95);
  EXPECT_EQ(a.count, b.count);
}

/// A trial with enough floating-point structure that any reordering of the
/// sample vector or partial reduction would change some Summary field.
double irrational_experiment(std::uint64_t seed) {
  const double x = static_cast<double>(seed % 100003);
  return std::sin(x) * 1e3 + std::sqrt(x + 1.0) / 3.0;
}

TEST(Parallel, ShardRangesPartitionTheIndexSpace) {
  for (std::size_t count : {0u, 1u, 7u, 64u, 1000u}) {
    for (std::size_t shards : {1u, 2u, 3u, 7u, 16u}) {
      if (shards > count && count != 0) {
        continue;
      }
      std::size_t expected_begin = 0;
      for (std::size_t s = 0; s < shards; ++s) {
        const auto [begin, end] = shard_range(count, shards, s);
        EXPECT_EQ(begin, expected_begin);
        EXPECT_LE(begin, end);
        expected_begin = end;
      }
      EXPECT_EQ(expected_begin, count);
    }
  }
}

TEST(Parallel, DefaultThreadCountHonorsEnvOverride) {
  ASSERT_EQ(setenv("DDL_THREADS", "3", 1), 0);
  EXPECT_EQ(default_thread_count(), 3u);
  ASSERT_EQ(setenv("DDL_THREADS", "not-a-number", 1), 0);
  EXPECT_GE(default_thread_count(), 1u);
  ASSERT_EQ(unsetenv("DDL_THREADS"), 0);
  EXPECT_GE(default_thread_count(), 1u);
}

TEST(Parallel, ForReduceConcatenatesInIndexOrder) {
  constexpr std::size_t kCount = 10'000;
  for (std::size_t threads : {1u, 2u, 3u, 8u}) {
    ThreadPool pool(threads);
    const auto indices = parallel_for_reduce<std::vector<std::size_t>>(
        pool, kCount, [] { return std::vector<std::size_t>(); },
        [](std::size_t i, std::vector<std::size_t>& acc) { acc.push_back(i); },
        [](std::vector<std::size_t>& total, std::vector<std::size_t>&& shard) {
          total.insert(total.end(), shard.begin(), shard.end());
        });
    ASSERT_EQ(indices.size(), kCount) << threads << " threads";
    for (std::size_t i = 0; i < kCount; ++i) {
      ASSERT_EQ(indices[i], i) << threads << " threads";
    }
  }
}

TEST(Parallel, ForReducePropagatesExceptions) {
  ThreadPool pool(4);
  EXPECT_THROW(
      parallel_for_reduce<int>(
          pool, 100, [] { return 0; },
          [](std::size_t i, int&) {
            if (i == 57) {
              throw std::runtime_error("trial exploded");
            }
          },
          [](int& total, int&& shard) { total += shard; }),
      std::runtime_error);
  // The pool must survive a throwing batch and run the next one cleanly.
  const int sum = parallel_for_reduce<int>(
      pool, 10, [] { return 0; },
      [](std::size_t i, int& acc) { acc += static_cast<int>(i); },
      [](int& total, int&& shard) { total += shard; });
  EXPECT_EQ(sum, 45);
}

TEST(MonteCarlo, SummaryBitIdenticalAcrossThreadCounts) {
  const auto baseline = monte_carlo(1000, 42, irrational_experiment, 1);
  EXPECT_EQ(baseline.count, 1000u);
  const std::size_t hw = std::max(1u, std::thread::hardware_concurrency());
  for (const std::size_t threads : {std::size_t{2}, std::size_t{4}, hw}) {
    expect_identical(baseline,
                     monte_carlo(1000, 42, irrational_experiment, threads));
  }
  // The default-pool entry point must agree too.
  expect_identical(baseline, monte_carlo(1000, 42, irrational_experiment));
}

TEST(MonteCarlo, YieldIdenticalAcrossThreadCounts) {
  const auto predicate = [](std::uint64_t seed) { return (seed % 3) == 0; };
  const double serial = monte_carlo_yield(999, 5, predicate, 1);
  for (const std::size_t threads : {2u, 4u, 7u}) {
    EXPECT_EQ(serial, monte_carlo_yield(999, 5, predicate, threads));
  }
  EXPECT_EQ(serial, monte_carlo_yield(999, 5, predicate));
}

TEST(MonteCarlo, DieSeedNeverZeroAcrossManyBases) {
  for (const std::uint64_t base :
       {0ULL, 1ULL, 42ULL, 0xffffffffffffffffULL, 0x9e3779b97f4a7c15ULL}) {
    for (std::size_t i = 0; i < 10'000; ++i) {
      ASSERT_NE(die_seed(base, i), 0u) << "base " << base << " index " << i;
    }
  }
}

// ---- Corner x die sweep ----------------------------------------------------------

TEST(Sweep, MatchesPerCornerMonteCarloAndIsThreadCountInvariant) {
  const std::vector<cells::OperatingPoint> corners = {
      cells::OperatingPoint::fast_process_only(),
      cells::OperatingPoint::typical(),
      cells::OperatingPoint::slow_process_only()};
  const auto experiment = [](const cells::OperatingPoint& op,
                             std::uint64_t seed) {
    return cells::process_delay_factor(op.corner) * irrational_experiment(seed);
  };
  const auto serial = sweep(corners, 200, 11, experiment, 1);
  ASSERT_EQ(serial.size(), corners.size());
  for (const std::size_t threads : {2u, 4u, 5u}) {
    const auto parallel = sweep(corners, 200, 11, experiment, threads);
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t c = 0; c < serial.size(); ++c) {
      EXPECT_EQ(parallel[c].op, serial[c].op);
      expect_identical(serial[c].summary, parallel[c].summary);
    }
  }
  // Each corner's summary equals a standalone monte_carlo of the same
  // experiment pinned to that corner: sweep shares die seeds across
  // corners (same die probed at each operating point).
  for (std::size_t c = 0; c < corners.size(); ++c) {
    const auto op = corners[c];
    expect_identical(
        serial[c].summary,
        monte_carlo(200, 11,
                    [&](std::uint64_t seed) { return experiment(op, seed); },
                    1));
  }
}

TEST(Sweep, EmptyGridsYieldEmptySummaries) {
  const std::vector<cells::OperatingPoint> corners = {
      cells::OperatingPoint::typical()};
  const auto none = sweep(corners, 0, 1,
                          [](const cells::OperatingPoint&, std::uint64_t) {
                            return 1.0;
                          });
  ASSERT_EQ(none.size(), 1u);
  EXPECT_EQ(none[0].summary.count, 0u);
  EXPECT_TRUE(sweep({}, 10, 1,
                    [](const cells::OperatingPoint&, std::uint64_t) {
                      return 1.0;
                    })
                  .empty());
}

// ---- Yield sweep (future work 5.2) ---------------------------------------------

TEST(Yield, MoreCellsNeverHurtYield) {
  const auto tech = cells::Technology::i32nm_class();
  core::ProposedLineConfig base{256, 2};
  const auto sweep =
      yield_vs_cells(tech, base, 10'000.0, ProcessDistribution{}, 64, 512,
                     /*trials=*/200, /*seed=*/3);
  ASSERT_EQ(sweep.size(), 4u);  // 64, 128, 256, 512.
  for (std::size_t i = 1; i < sweep.size(); ++i) {
    EXPECT_GE(sweep[i].yield, sweep[i - 1].yield);
    EXPECT_GT(sweep[i].area_um2, sweep[i - 1].area_um2);
  }
}

TEST(Yield, WorstCaseCountYieldsEverything) {
  // 256 cells x 2 buffers covers the period even for an all-fast die, so
  // yield at the worst-case count must be 1.0 (the thesis's "100% of the
  // designed chips" criterion).
  const auto tech = cells::Technology::i32nm_class();
  const auto sweep =
      yield_vs_cells(tech, core::ProposedLineConfig{256, 2}, 10'000.0,
                     ProcessDistribution{}, 256, 256, 300, 5);
  ASSERT_EQ(sweep.size(), 1u);
  EXPECT_DOUBLE_EQ(sweep[0].yield, 1.0);
}

TEST(Yield, UndersizedLineLosesDies) {
  // 64 cells x 2 buffers = 10.24 ns only for the *slowest* dies; typical
  // ones fall short, so yield collapses.
  const auto tech = cells::Technology::i32nm_class();
  const auto sweep =
      yield_vs_cells(tech, core::ProposedLineConfig{256, 2}, 10'000.0,
                     ProcessDistribution{}, 64, 64, 300, 5);
  EXPECT_LT(sweep[0].yield, 0.5);
}

TEST(Yield, CellsForYieldPicksSmallestSufficientCount) {
  std::vector<YieldPoint> sweep{{64, 0.2, 80.0}, {128, 0.95, 160.0},
                                {256, 1.0, 320.0}};
  EXPECT_EQ(cells_for_yield(sweep, 0.9), 128u);
  EXPECT_EQ(cells_for_yield(sweep, 0.99), 256u);
  EXPECT_EQ(cells_for_yield(sweep, 1.1), 0u);
}

// ---- Report writers --------------------------------------------------------------

TEST(Report, TextTableAlignsAndValidates) {
  TextTable table({"corner", "area"});
  table.add_row({"fast", TextTable::num(123.456, 1)});
  EXPECT_THROW(table.add_row({"too", "many", "cells"}), std::invalid_argument);
  const std::string rendered = table.render();
  EXPECT_NE(rendered.find("corner"), std::string::npos);
  EXPECT_NE(rendered.find("123.5"), std::string::npos);
}

TEST(Report, CsvRoundTrip) {
  const std::string path = ::testing::TempDir() + "ddl_report_test.csv";
  write_csv(path, "x", {1.0, 2.0}, {{"a", {10.0, 20.0}}, {"b", {30.0, 40.0}}});
  std::ifstream in(path);
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "x,a,b");
  std::string row;
  std::getline(in, row);
  EXPECT_EQ(row, "1,10,30");
  std::remove(path.c_str());
}

TEST(Report, CsvRejectsMismatchedSeries) {
  EXPECT_THROW(write_csv(::testing::TempDir() + "bad.csv", "x", {1.0},
                         {{"a", {1.0, 2.0}}}),
               std::invalid_argument);
}

// ---- Bench JSON reports ----------------------------------------------------------

TEST(BenchJson, RendersTypesEscapesAndKeyOrder) {
  BenchReport report("unit_test");
  report.set("pi", 3.5);
  report.set("count", std::uint64_t{42});
  report.set("delta", std::int64_t{-7});
  report.set("ok", true);
  report.set("label", "a \"quoted\"\nline");
  const std::string json = report.to_json();
  // name and threads are auto-recorded first; fields keep insertion order.
  EXPECT_LT(json.find("\"name\": \"unit_test\""), json.find("\"threads\""));
  EXPECT_LT(json.find("\"threads\""), json.find("\"pi\": 3.5"));
  EXPECT_NE(json.find("\"count\": 42"), std::string::npos);
  EXPECT_NE(json.find("\"delta\": -7"), std::string::npos);
  EXPECT_NE(json.find("\"ok\": true"), std::string::npos);
  EXPECT_NE(json.find("\"label\": \"a \\\"quoted\\\"\\nline\""),
            std::string::npos);
  // Re-setting a key overwrites in place instead of appending.
  report.set("pi", 3.25);
  EXPECT_NE(report.to_json().find("\"pi\": 3.25"), std::string::npos);
  EXPECT_EQ(report.to_json().find("\"pi\": 3.5"), std::string::npos);
}

TEST(BenchJson, SummaryFlattensAllFields) {
  BenchReport report("unit_test");
  report.set_summary("inl", summarize({1.0, 2.0, 3.0}));
  const std::string json = report.to_json();
  for (const char* field :
       {"inl_mean", "inl_stddev", "inl_min", "inl_max", "inl_p05", "inl_p50",
        "inl_p95", "inl_count"}) {
    EXPECT_NE(json.find(field), std::string::npos) << field;
  }
  EXPECT_NE(json.find("\"inl_count\": 3"), std::string::npos);
}

TEST(BenchJson, WriteHonorsBenchDirEnv) {
  ASSERT_EQ(setenv("DDL_BENCH_DIR", ::testing::TempDir().c_str(), 1), 0);
  BenchReport report("write_test");
  report.set("wall_ms", 1.5);
  const std::string path = report.write();
  ASSERT_EQ(unsetenv("DDL_BENCH_DIR"), 0);
  EXPECT_NE(path.find("BENCH_write_test.json"), std::string::npos);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_NE(contents.find("\"name\": \"write_test\""), std::string::npos);
  EXPECT_NE(contents.find("\"wall_ms\": 1.5"), std::string::npos);
  std::remove(path.c_str());
}

TEST(BenchJson, TrialsOverrideFromEnv) {
  ASSERT_EQ(setenv("DDL_BENCH_TRIALS", "5", 1), 0);
  EXPECT_EQ(BenchReport::trials_or(100), 5u);
  ASSERT_EQ(setenv("DDL_BENCH_TRIALS", "bogus", 1), 0);
  EXPECT_EQ(BenchReport::trials_or(100), 100u);
  ASSERT_EQ(unsetenv("DDL_BENCH_TRIALS"), 0);
  EXPECT_EQ(BenchReport::trials_or(100), 100u);
}

TEST(BenchJson, RejectsEmptyName) {
  EXPECT_THROW(BenchReport(""), std::invalid_argument);
}

}  // namespace
}  // namespace ddl::analysis
