// Tests for the analysis toolbox: linearity metrics, MTBF, Monte Carlo,
// yield sweep and report writers.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <set>

#include "ddl/analysis/linearity.h"
#include "ddl/analysis/monte_carlo.h"
#include "ddl/analysis/mtbf.h"
#include "ddl/analysis/report.h"
#include "ddl/analysis/yield.h"

namespace ddl::analysis {
namespace {

// ---- Linearity ------------------------------------------------------------

std::vector<double> perfect_ramp(std::size_t n, double step) {
  std::vector<double> curve;
  for (std::size_t i = 0; i < n; ++i) {
    curve.push_back(step * static_cast<double>(i + 1));
  }
  return curve;
}

TEST(Linearity, PerfectRampHasZeroDnlInl) {
  const auto report = analyze_linearity(perfect_ramp(64, 80.0));
  EXPECT_NEAR(report.max_dnl_lsb, 0.0, 1e-9);
  EXPECT_NEAR(report.max_inl_lsb, 0.0, 1e-9);
  EXPECT_TRUE(report.monotonic);
  EXPECT_EQ(report.zero_steps, 0u);
  EXPECT_DOUBLE_EQ(report.ideal_step, 80.0);
}

TEST(Linearity, SingleOversizedStepShowsInDnl) {
  auto curve = perfect_ramp(64, 80.0);
  for (std::size_t i = 32; i < curve.size(); ++i) {
    curve[i] += 80.0;  // Code 31->32 step doubled.
  }
  const auto report = analyze_linearity(curve);
  // The doubled step is ~1 LSB of DNL (slightly less after end-point
  // renormalization).
  EXPECT_GT(report.max_dnl_lsb, 0.85);
  EXPECT_TRUE(report.monotonic);
}

TEST(Linearity, StaircaseCountsZeroSteps) {
  // Two input words per physical tap -- the proposed scheme's slow corner.
  std::vector<double> curve;
  for (int i = 0; i < 32; ++i) {
    curve.push_back(160.0 * (i / 2 + 1));
  }
  const auto report = analyze_linearity(curve);
  EXPECT_EQ(report.zero_steps, 16u);
  EXPECT_TRUE(report.monotonic);
}

TEST(Linearity, NonMonotonicDetected) {
  auto curve = perfect_ramp(16, 10.0);
  curve[8] = curve[7] - 5.0;
  EXPECT_FALSE(analyze_linearity(curve).monotonic);
}

TEST(Linearity, BowedCurveShowsInInl) {
  std::vector<double> curve;
  for (int i = 0; i < 64; ++i) {
    const double x = static_cast<double>(i) / 63.0;
    curve.push_back(1000.0 * (x + 0.1 * x * (1.0 - x)));  // Parabolic bow.
  }
  const auto report = analyze_linearity(curve);
  EXPECT_GT(report.max_inl_lsb, 1.0);
  EXPECT_GT(report.rms_inl_lsb, 0.3);
}

TEST(Linearity, RejectsTinyCurves) {
  EXPECT_THROW(analyze_linearity({1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(dnl_lsb({1.0}), std::invalid_argument);
  EXPECT_THROW(inl_lsb({}), std::invalid_argument);
}

// ---- MTBF -------------------------------------------------------------------

TEST(Mtbf, GrowsExponentiallyWithResolutionTime) {
  MtbfParams params;
  params.resolution_time_s = 1e-9;
  const double short_res = synchronizer_mtbf_s(params);
  params.resolution_time_s = 5e-9;
  const double long_res = synchronizer_mtbf_s(params);
  EXPECT_GT(long_res, short_res * 1e10);
}

TEST(Mtbf, ExtraSynchronizerStageMultipliesMtbf) {
  const auto tech = cells::Technology::i32nm_class();
  const double one = synchronizer_mtbf_s(tech, 100e6, 50e6, 1);
  const double two = synchronizer_mtbf_s(tech, 100e6, 50e6, 2);
  const double three = synchronizer_mtbf_s(tech, 100e6, 50e6, 3);
  EXPECT_GT(two, one * 1e10);
  EXPECT_GE(three, two);  // May saturate at +inf, hence GE.
}

TEST(Mtbf, SingleStageIsUnacceptablyFrequent) {
  // With zero resolution slack a raw flop fails constantly -- the reason
  // Figure 38 adds a second stage.
  const auto tech = cells::Technology::i32nm_class();
  const double mtbf = synchronizer_mtbf_s(tech, 100e6, 50e6, 1);
  EXPECT_LT(mtbf, 1.0);  // Less than a second between failures.
}

TEST(Mtbf, FasterClockWorsensMtbf) {
  const auto tech = cells::Technology::i32nm_class();
  EXPECT_GT(synchronizer_mtbf_s(tech, 50e6, 25e6, 2),
            synchronizer_mtbf_s(tech, 200e6, 100e6, 2));
}

TEST(Mtbf, FormatsHumanReadableUnits) {
  EXPECT_NE(format_mtbf(1e12).find("years"), std::string::npos);
  EXPECT_NE(format_mtbf(10.0).find(" s"), std::string::npos);
  EXPECT_NE(format_mtbf(1e-7).find("us"), std::string::npos);
}

// ---- Monte Carlo ---------------------------------------------------------------

TEST(MonteCarlo, SummaryOfKnownSamples) {
  const auto s = summarize({1.0, 2.0, 3.0, 4.0, 5.0});
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.p50, 3.0);
  EXPECT_EQ(s.count, 5u);
  EXPECT_NEAR(s.stddev, std::sqrt(2.0), 1e-12);
}

TEST(MonteCarlo, EmptySummaryIsZero) {
  const auto s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(MonteCarlo, DieSeedsAreDistinctAndNonZero) {
  std::set<std::uint64_t> seeds;
  for (std::size_t i = 0; i < 1000; ++i) {
    const auto seed = die_seed(42, i);
    EXPECT_NE(seed, 0u);
    seeds.insert(seed);
  }
  EXPECT_EQ(seeds.size(), 1000u);
}

TEST(MonteCarlo, HarnessIsDeterministic) {
  auto experiment = [](std::uint64_t seed) {
    return static_cast<double>(seed % 1000);
  };
  const auto a = monte_carlo(100, 7, experiment);
  const auto b = monte_carlo(100, 7, experiment);
  EXPECT_DOUBLE_EQ(a.mean, b.mean);
  EXPECT_DOUBLE_EQ(a.p95, b.p95);
}

TEST(MonteCarlo, YieldCountsPredicatePasses) {
  EXPECT_DOUBLE_EQ(
      monte_carlo_yield(100, 1, [](std::uint64_t) { return true; }), 1.0);
  EXPECT_DOUBLE_EQ(
      monte_carlo_yield(100, 1, [](std::uint64_t) { return false; }), 0.0);
  const double half = monte_carlo_yield(
      10'000, 1, [](std::uint64_t seed) { return (seed & 1) != 0; });
  EXPECT_NEAR(half, 0.5, 0.03);
}

// ---- Yield sweep (future work 5.2) ---------------------------------------------

TEST(Yield, MoreCellsNeverHurtYield) {
  const auto tech = cells::Technology::i32nm_class();
  core::ProposedLineConfig base{256, 2};
  const auto sweep =
      yield_vs_cells(tech, base, 10'000.0, ProcessDistribution{}, 64, 512,
                     /*trials=*/200, /*seed=*/3);
  ASSERT_EQ(sweep.size(), 4u);  // 64, 128, 256, 512.
  for (std::size_t i = 1; i < sweep.size(); ++i) {
    EXPECT_GE(sweep[i].yield, sweep[i - 1].yield);
    EXPECT_GT(sweep[i].area_um2, sweep[i - 1].area_um2);
  }
}

TEST(Yield, WorstCaseCountYieldsEverything) {
  // 256 cells x 2 buffers covers the period even for an all-fast die, so
  // yield at the worst-case count must be 1.0 (the thesis's "100% of the
  // designed chips" criterion).
  const auto tech = cells::Technology::i32nm_class();
  const auto sweep =
      yield_vs_cells(tech, core::ProposedLineConfig{256, 2}, 10'000.0,
                     ProcessDistribution{}, 256, 256, 300, 5);
  ASSERT_EQ(sweep.size(), 1u);
  EXPECT_DOUBLE_EQ(sweep[0].yield, 1.0);
}

TEST(Yield, UndersizedLineLosesDies) {
  // 64 cells x 2 buffers = 10.24 ns only for the *slowest* dies; typical
  // ones fall short, so yield collapses.
  const auto tech = cells::Technology::i32nm_class();
  const auto sweep =
      yield_vs_cells(tech, core::ProposedLineConfig{256, 2}, 10'000.0,
                     ProcessDistribution{}, 64, 64, 300, 5);
  EXPECT_LT(sweep[0].yield, 0.5);
}

TEST(Yield, CellsForYieldPicksSmallestSufficientCount) {
  std::vector<YieldPoint> sweep{{64, 0.2, 80.0}, {128, 0.95, 160.0},
                                {256, 1.0, 320.0}};
  EXPECT_EQ(cells_for_yield(sweep, 0.9), 128u);
  EXPECT_EQ(cells_for_yield(sweep, 0.99), 256u);
  EXPECT_EQ(cells_for_yield(sweep, 1.1), 0u);
}

// ---- Report writers --------------------------------------------------------------

TEST(Report, TextTableAlignsAndValidates) {
  TextTable table({"corner", "area"});
  table.add_row({"fast", TextTable::num(123.456, 1)});
  EXPECT_THROW(table.add_row({"too", "many", "cells"}), std::invalid_argument);
  const std::string rendered = table.render();
  EXPECT_NE(rendered.find("corner"), std::string::npos);
  EXPECT_NE(rendered.find("123.5"), std::string::npos);
}

TEST(Report, CsvRoundTrip) {
  const std::string path = ::testing::TempDir() + "ddl_report_test.csv";
  write_csv(path, "x", {1.0, 2.0}, {{"a", {10.0, 20.0}}, {"b", {30.0, 40.0}}});
  std::ifstream in(path);
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "x,a,b");
  std::string row;
  std::getline(in, row);
  EXPECT_EQ(row, "1,10,30");
  std::remove(path.c_str());
}

TEST(Report, CsvRejectsMismatchedSeries) {
  EXPECT_THROW(write_csv(::testing::TempDir() + "bad.csv", "x", {1.0},
                         {{"a", {1.0, 2.0}}}),
               std::invalid_argument);
}

}  // namespace
}  // namespace ddl::analysis
