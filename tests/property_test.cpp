// Property-based sweeps and failure-injection tests across the whole stack:
// invariants that must hold for *every* point of a (frequency x resolution x
// corner x die) grid, and graceful behaviour under injected cell faults.
#include <gtest/gtest.h>

#include <cmath>

#include "ddl/analysis/linearity.h"
#include "ddl/analysis/monte_carlo.h"
#include "ddl/core/calibrated_dpwm.h"
#include "ddl/core/design_calculator.h"
#include "ddl/synth/delay_line_synth.h"

namespace ddl {
namespace {

using cells::OperatingPoint;

const cells::Technology kTech = cells::Technology::i32nm_class();

// ---- Grid sweep: every sized design locks and tracks duty at every corner.

struct GridPoint {
  double mhz;
  int bits;
  OperatingPoint op;
};

std::vector<GridPoint> full_grid() {
  std::vector<GridPoint> grid;
  for (double mhz : {50.0, 100.0, 200.0}) {
    for (int bits : {4, 6, 8}) {
      for (const auto op :
           {OperatingPoint::fast_process_only(), OperatingPoint::typical(),
            OperatingPoint::slow_process_only()}) {
        grid.push_back({mhz, bits, op});
      }
    }
  }
  return grid;
}

class DesignGrid : public ::testing::TestWithParam<GridPoint> {};

TEST_P(DesignGrid, ProposedSchemeLocksAndTracksEverywhere) {
  const auto& point = GetParam();
  core::DesignCalculator calc(kTech);
  const core::DesignSpec spec{point.mhz, point.bits};
  const auto design = calc.size_proposed(spec);
  ASSERT_TRUE(design.lock_guaranteed);

  core::ProposedDelayLine line(kTech, design.line, /*seed=*/3);
  core::ProposedDpwmSystem system(line, spec.clock_period_ps());
  system.set_environment(core::EnvironmentSchedule(point.op));
  ASSERT_TRUE(system.calibrate().has_value());

  // Duty tracking within the corner's quantization everywhere on the grid:
  // the achievable step is one cell out of the 2 x tap_sel covering the
  // period, and truncation + lock dither cost up to ~2.5 steps.
  const std::uint64_t full = design.line.num_cells;
  const double quantum =
      2.5 / (2.0 * static_cast<double>(system.controller().tap_sel())) + 0.01;
  for (std::uint64_t word = full / 4; word < full; word += full / 4) {
    const auto pwm = system.generate(0, word);
    EXPECT_NEAR(pwm.duty(), static_cast<double>(word) / full, quantum)
        << point.mhz << " MHz, " << point.bits << " bits, "
        << to_string(point.op.corner) << ", word " << word;
  }
}

TEST_P(DesignGrid, ConventionalSchemeLocksAndTracksWhereFeasible) {
  const auto& point = GetParam();
  core::DesignCalculator calc(kTech);
  const core::DesignSpec spec{point.mhz, point.bits};
  const auto design = calc.size_conventional(spec);
  ASSERT_TRUE(design.lock_guaranteed);
  if (!core::conventional_feasible_at(design, kTech, point.op,
                                      spec.clock_period_ps())) {
    // The conventional scheme's minimum-delay blind spot (see
    // ConventionalDesign::feasible_at_slow): its minimum line delay at this
    // corner overshoots the period, so there is nothing to lock.  The
    // proposed scheme's grid test above has no such exclusion -- a
    // coverage advantage the thesis does not call out.
    GTEST_SKIP() << "conventional design infeasible at "
                 << to_string(point.op.corner);
  }

  core::ConventionalDelayLine line(kTech, design.line, /*seed=*/3);
  core::ConventionalDpwmSystem system(line, spec.clock_period_ps(),
                                      core::LockingOrder::kInterleaved);
  system.set_environment(core::EnvironmentSchedule(point.op));
  ASSERT_TRUE(system.calibrate().has_value());

  // The conventional convention executes (word+1) cells; the slow-corner
  // floor lock additionally stretches the full scale by the sliver.
  const std::uint64_t full = design.line.num_cells;
  for (std::uint64_t word = full / 4; word < full; word += full / 4) {
    const auto pwm = system.generate(0, word);
    const double requested = static_cast<double>(word + 1) / full;
    EXPECT_NEAR(pwm.duty(), requested, 0.05)
        << point.mhz << " MHz, " << point.bits << " bits, "
        << to_string(point.op.corner) << ", word " << word;
  }
}

INSTANTIATE_TEST_SUITE_P(FreqBitsCorner, DesignGrid,
                         ::testing::ValuesIn(full_grid()));

// ---- Die-to-die properties ---------------------------------------------------

TEST(DieProperties, EveryDieLocksAndTapsStayMonotone) {
  const auto op = OperatingPoint::typical();
  for (std::size_t i = 0; i < 25; ++i) {
    const std::uint64_t seed = analysis::die_seed(42, i);
    core::ProposedDelayLine line(kTech, {256, 2}, seed);
    const auto taps = line.tap_delays(op);
    for (std::size_t t = 1; t < taps.size(); ++t) {
      ASSERT_GT(taps[t], taps[t - 1]) << "die " << i << " tap " << t;
    }
    core::ProposedController controller(line, 10'000.0);
    EXPECT_TRUE(controller.run_to_lock(op).has_value()) << "die " << i;
    EXPECT_NEAR(static_cast<double>(controller.tap_sel()), 62.0, 4.0)
        << "die " << i;
  }
}

TEST(DieProperties, LockCyclesScaleWithCornerAcrossDies) {
  // Property: for any die, fast-corner locking walks ~2x the typical walk
  // and ~4x the slow walk (the Figure 31 picture).
  for (std::size_t i = 0; i < 10; ++i) {
    const std::uint64_t seed = analysis::die_seed(7, i);
    core::ProposedDelayLine line(kTech, {256, 2}, seed);
    core::ProposedController fast_ctl(line, 10'000.0);
    core::ProposedController typ_ctl(line, 10'000.0);
    core::ProposedController slow_ctl(line, 10'000.0);
    const auto fast = fast_ctl.run_to_lock(OperatingPoint::fast_process_only());
    const auto typ = typ_ctl.run_to_lock(OperatingPoint::typical());
    const auto slow = slow_ctl.run_to_lock(OperatingPoint::slow_process_only());
    ASSERT_TRUE(fast && typ && slow);
    EXPECT_NEAR(static_cast<double>(*fast) / static_cast<double>(*typ), 2.0,
                0.25);
    EXPECT_NEAR(static_cast<double>(*typ) / static_cast<double>(*slow), 2.0,
                0.35);
  }
}

// ---- Failure injection ----------------------------------------------------------

/// A line with one grossly degraded cell (e.g. a resistive via): delay of
/// cell `victim` multiplied by `factor`.
std::vector<double> degraded_taps(const core::ProposedDelayLine& line,
                                  const OperatingPoint& op, std::size_t victim,
                                  double factor) {
  std::vector<double> taps;
  double cumulative = 0.0;
  for (std::size_t i = 0; i < line.size(); ++i) {
    double cell = line.cell_delay_ps(i, op);
    if (i == victim) {
      cell *= factor;
    }
    cumulative += cell;
    taps.push_back(cumulative);
  }
  return taps;
}

TEST(FailureInjection, CalibrationAbsorbsADegradedCell) {
  // A 3x-slow cell early in the line: the proposed controller simply locks
  // fewer cells; full-period coverage and monotonicity survive.  (The
  // controller only needs *cumulative* delay to grow monotonically.)
  const auto op = OperatingPoint::typical();
  core::ProposedDelayLine line(kTech, {256, 2});
  const auto taps = degraded_taps(line, op, /*victim=*/10, /*factor=*/3.0);

  // Re-derive the lock point over the degraded taps.
  std::size_t tap_sel = 0;
  while (tap_sel + 1 < taps.size() && taps[tap_sel] < 5'000.0) {
    ++tap_sel;
  }
  EXPECT_LT(tap_sel, 62u);  // Fewer cells than the healthy die.
  EXPECT_GE(taps[tap_sel], 5'000.0);
  // The full period is still covered by 2 x tap_sel cells (within a cell).
  EXPECT_NEAR(taps[2 * tap_sel], 10'000.0, 400.0);
}

TEST(FailureInjection, DegradedCellShowsUpAsLocalDnlSpike) {
  const auto op = OperatingPoint::typical();
  core::ProposedDelayLine line(kTech, {256, 2});
  const auto taps = degraded_taps(line, op, /*victim=*/64, /*factor=*/3.0);
  const auto dnl = analysis::dnl_lsb(
      std::vector<double>(taps.begin(), taps.begin() + 125));
  // The spike sits exactly at the victim cell and nowhere else.
  for (std::size_t i = 0; i < dnl.size(); ++i) {
    if (i == 63) {
      EXPECT_GT(dnl[i], 1.5);
    } else {
      EXPECT_LT(std::abs(dnl[i]), 0.5) << "code " << i;
    }
  }
}

TEST(FailureInjection, TemperatureRunawayEventuallyExceedsLineRange) {
  // Drift injection: heat the die until even tap 0 exceeds half the
  // period -- the controller must report kAtLimit rather than lie.
  core::ProposedDelayLine line(kTech, {16, 1});  // Tiny line: 40 ps cells.
  core::ProposedController controller(line, /*period=*/1'200.0);
  OperatingPoint op = OperatingPoint::typical();
  ASSERT_TRUE(controller.run_to_lock(op).has_value());
  // 16 cells x 40 ps = 640 ps max; heat until half-period 600 ps is out of
  // range of the shrunken... rather: cool the die so cells speed up and the
  // full line undershoots the half period.
  op.corner = cells::ProcessCorner::kFast;  // Cells -> 20 ps, line 320 ps.
  core::LockStatus status = core::LockStatus::kSearching;
  for (int i = 0; i < 100; ++i) {
    status = controller.step(op);
  }
  EXPECT_EQ(status, core::LockStatus::kAtLimit);
}

TEST(FailureInjection, SupplyDroopWithinCalibrationRangeIsAbsorbed) {
  core::ProposedDelayLine line(kTech, {256, 2});
  core::ProposedDpwmSystem system(line, 10'000.0);
  system.set_environment(
      core::EnvironmentSchedule(OperatingPoint::typical())
          .with_voltage_spike(0, sim::kTimeNever, -0.1));  // Permanent droop.
  ASSERT_TRUE(system.calibrate().has_value());
  const auto pwm = system.generate(0, 128);
  EXPECT_NEAR(pwm.duty(), 0.5, 0.02);
}

// ---- Synthesis-model properties ------------------------------------------------

TEST(SynthProperties, AreaIsMonotoneInEveryGeometryKnob) {
  const auto base = synth::synthesize_proposed({256, 2}, kTech);
  EXPECT_GT(synth::synthesize_proposed({512, 2}, kTech).total_area_um2(),
            base.total_area_um2());
  EXPECT_GT(synth::synthesize_proposed({256, 4}, kTech).total_area_um2(),
            base.total_area_um2());
  const auto conv_base = synth::synthesize_conventional({64, 4, 2}, kTech);
  EXPECT_GT(
      synth::synthesize_conventional({128, 4, 2}, kTech).total_area_um2(),
      conv_base.total_area_um2());
  EXPECT_GT(
      synth::synthesize_conventional({64, 4, 4}, kTech).total_area_um2(),
      conv_base.total_area_um2());
}

TEST(SynthProperties, ProposedWinsAcrossTheWholeGrid) {
  // The paper's headline area claim as a grid property, not a point check.
  core::DesignCalculator calc(kTech);
  for (double mhz : {25.0, 50.0, 100.0, 200.0, 400.0}) {
    for (int bits : {4, 5, 6, 7}) {
      const core::DesignSpec spec{mhz, bits};
      const double proposed =
          synth::synthesize_proposed(calc.size_proposed(spec).line, kTech)
              .total_area_um2();
      const double conventional =
          synth::synthesize_conventional(calc.size_conventional(spec).line,
                                         kTech)
              .total_area_um2();
      EXPECT_LT(proposed, conventional) << mhz << " MHz " << bits << " bits";
    }
  }
}

}  // namespace
}  // namespace ddl
