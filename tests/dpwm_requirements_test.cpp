// Tests for the DPWM resource calculators (thesis Eqs 11-15, Table 2).
#include <gtest/gtest.h>

#include "ddl/dpwm/requirements.h"

namespace ddl::dpwm {
namespace {

const cells::Technology kTech = cells::Technology::i32nm_class();

TEST(Equations, OutputVoltageIsDutyTimesInput) {
  EXPECT_DOUBLE_EQ(output_voltage(3.0, 0.5), 1.5);  // Eq 11.
  EXPECT_DOUBLE_EQ(output_voltage(3.0, 0.0), 0.0);
}

TEST(Equations, VoltageResolutionHalvesPerBit) {
  // Eq 12.
  EXPECT_DOUBLE_EQ(voltage_resolution(3.0, 1), 1.5);
  EXPECT_DOUBLE_EQ(voltage_resolution(3.0, 2), 0.75);
  EXPECT_DOUBLE_EQ(voltage_resolution(2.56, 8), 0.01);
}

TEST(Equations, RequiredBitsInverts) {
  // ~10 mV resolution from a 3 V rail needs ceil(log2(300)) = 9 bits.
  EXPECT_EQ(required_bits(3.0, 10e-3), 9);
  EXPECT_EQ(required_bits(3.0, 1.5), 1);
}

TEST(Equations, CounterClockIsTwoToTheNTimesSwitching) {
  // Eq 13; the thesis's flagship case: 13 bits at ~1 MHz switching needs a
  // multi-GHz clock (section 2.2.1).
  EXPECT_DOUBLE_EQ(counter_clock_hz(2, 1e6), 4e6);
  EXPECT_DOUBLE_EQ(counter_clock_hz(13, 1e6), 8.192e9);
  EXPECT_GT(counter_clock_hz(13, 1e6), 1e9);
}

TEST(Equations, DelayLineCellsIsTwoToTheN) {
  EXPECT_EQ(delay_line_cells(2), 4u);   // Eq 15, Figure 21's example.
  EXPECT_EQ(delay_line_cells(8), 256u);
  EXPECT_EQ(delay_line_cells(13), 8192u);
}

TEST(Equations, DynamicPowerScalesLinearlyWithClock) {
  // Eq 14.
  const double p1 = dynamic_power_w(0.5, 1e-12, 1.0, 1e8);
  const double p2 = dynamic_power_w(0.5, 1e-12, 1.0, 2e8);
  EXPECT_DOUBLE_EQ(p2, 2.0 * p1);
  // And quadratically with Vdd.
  EXPECT_DOUBLE_EQ(dynamic_power_w(0.5, 1e-12, 2.0, 1e8), 4.0 * p1);
}

TEST(Requirements, CounterNeedsHighClockSmallArea) {
  const auto req = counter_requirements(10, 1e6, kTech);
  EXPECT_DOUBLE_EQ(req.clock_hz, 1024e6);
  EXPECT_EQ(req.delay_cells, 0u);
  EXPECT_EQ(req.flip_flops, 11u);
  EXPECT_LT(req.area_um2, 300.0);
}

TEST(Requirements, DelayLineNeedsLowClockLargeArea) {
  const auto req = delay_line_requirements(10, 1e6, kTech);
  EXPECT_DOUBLE_EQ(req.clock_hz, 1e6);
  EXPECT_EQ(req.delay_cells, 1024u);
  EXPECT_EQ(req.mux2_count, 1023u);
  EXPECT_GT(req.area_um2, 1000.0);
}

TEST(Requirements, Table2Ordering) {
  // Table 2: counter = high clock/power, small area; delay line = low
  // clock/power, large area.
  for (int bits : {8, 10, 12}) {
    const auto counter = counter_requirements(bits, 1e6, kTech);
    const auto line = delay_line_requirements(bits, 1e6, kTech);
    EXPECT_GT(counter.clock_hz, line.clock_hz) << bits;
    EXPECT_GT(counter.power_w, line.power_w) << bits;
    EXPECT_LT(counter.area_um2, line.area_um2) << bits;
  }
}

TEST(Requirements, HybridInterpolatesBetweenExtremes) {
  // The Figure 22 example: 5 bits = 3-bit counter + 2-bit line.
  const auto hybrid = hybrid_requirements(5, 3, 1e6, kTech);
  EXPECT_DOUBLE_EQ(hybrid.clock_hz, 8e6);   // 8x switching, not 32x.
  EXPECT_EQ(hybrid.delay_cells, 4u);        // 4 cells, not 32.
  const auto counter = counter_requirements(5, 1e6, kTech);
  const auto line = delay_line_requirements(5, 1e6, kTech);
  EXPECT_LT(hybrid.clock_hz, counter.clock_hz);
  EXPECT_LT(hybrid.delay_cells, line.delay_cells);
}

class HybridSplit : public ::testing::TestWithParam<int> {};

TEST_P(HybridSplit, EndpointsMatchPureArchitectures) {
  const int bits = GetParam();
  const auto all_counter = hybrid_requirements(bits, bits - 1, 1e6, kTech);
  EXPECT_DOUBLE_EQ(all_counter.clock_hz,
                   counter_clock_hz(bits - 1, 1e6));
  const auto all_line = hybrid_requirements(bits, 1, 1e6, kTech);
  EXPECT_EQ(all_line.delay_cells, delay_line_cells(bits - 1));
}

TEST_P(HybridSplit, BestSplitIsInterior) {
  const int bits = GetParam();
  const int split = best_hybrid_split(bits, 1e6, kTech);
  EXPECT_GE(split, 0);
  EXPECT_LE(split, bits);
}

INSTANTIATE_TEST_SUITE_P(Resolutions, HybridSplit,
                         ::testing::Values(4, 6, 8, 10, 12, 13));

TEST(Requirements, MoreBitsNeverShrinkAnything) {
  for (int bits = 3; bits < 12; ++bits) {
    const auto lo = delay_line_requirements(bits, 1e6, kTech);
    const auto hi = delay_line_requirements(bits + 1, 1e6, kTech);
    EXPECT_GT(hi.area_um2, lo.area_um2);
    EXPECT_GT(hi.delay_cells, lo.delay_cells);
    const auto clo = counter_requirements(bits, 1e6, kTech);
    const auto chi = counter_requirements(bits + 1, 1e6, kTech);
    EXPECT_GT(chi.clock_hz, clo.clock_hz);
    EXPECT_GT(chi.power_w, clo.power_w);
  }
}

}  // namespace
}  // namespace ddl::dpwm
