// Tests for the ddl::scenario subsystem: registry contents, spec lowering,
// classification edge cases, the ramp_load helper it rides on, and the
// determinism contract -- the same suite run at 1, 2, 4 and the default
// thread count must produce byte-identical JSONL and verdict counts.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "ddl/control/closed_loop.h"
#include "ddl/scenario/batch_plan.h"
#include "ddl/scenario/registry.h"
#include "ddl/scenario/runner.h"
#include "ddl/scenario/workspace.h"

namespace {

using ddl::scenario::Architecture;
using ddl::scenario::FaultSpec;
using ddl::scenario::LoadSpec;
using ddl::scenario::ScenarioRegistry;
using ddl::scenario::ScenarioRunner;
using ddl::scenario::ScenarioSpec;

TEST(RampLoadTest, InterpolatesBetweenEndpoints) {
  const auto load = ddl::control::ramp_load(0.2, 1.0, 100, 300);
  EXPECT_DOUBLE_EQ(load(0), 0.2);
  EXPECT_DOUBLE_EQ(load(100), 0.2);
  EXPECT_DOUBLE_EQ(load(200), 0.6);
  EXPECT_DOUBLE_EQ(load(300), 1.0);
  EXPECT_DOUBLE_EQ(load(5000), 1.0);
}

TEST(RampLoadTest, DegenerateRampActsAsStep) {
  const auto load = ddl::control::ramp_load(0.2, 1.0, 300, 300);
  EXPECT_DOUBLE_EQ(load(299), 0.2);
  EXPECT_DOUBLE_EQ(load(300), 1.0);
}

TEST(RampLoadTest, DownwardRamp) {
  const auto load = ddl::control::ramp_load(1.0, 0.2, 0, 400);
  EXPECT_DOUBLE_EQ(load(0), 1.0);
  EXPECT_DOUBLE_EQ(load(200), 0.6);
  EXPECT_DOUBLE_EQ(load(400), 0.2);
}

TEST(LoadSpecTest, LowersToMatchingProfiles) {
  EXPECT_DOUBLE_EQ(LoadSpec::constant(0.4).make(1)(123), 0.4);
  const auto step = LoadSpec::step(0.2, 1.0, 50).make(1);
  EXPECT_DOUBLE_EQ(step(49), 0.2);
  EXPECT_DOUBLE_EQ(step(50), 1.0);
  const auto ramp = LoadSpec::ramp(0.0, 1.0, 0, 100).make(1);
  EXPECT_DOUBLE_EQ(ramp(50), 0.5);
  // The Markov chain is seed-deterministic.
  const auto a = LoadSpec::burst(0.1, 0.9).make(7);
  const auto b = LoadSpec::burst(0.1, 0.9).make(7);
  for (std::uint64_t p = 0; p < 200; ++p) {
    EXPECT_DOUBLE_EQ(a(p), b(p));
  }
}

TEST(RegistryTest, BuiltinSuitesArePresent) {
  const auto& registry = ScenarioRegistry::builtin();
  for (const char* suite : {"regulation", "transient", "dvfs", "pvt", "fault",
                            "recovery", "smoke", "chaos", "regression"}) {
    EXPECT_TRUE(registry.has_suite(suite)) << suite;
  }
  EXPECT_FALSE(registry.has_suite("nonesuch"));
  EXPECT_THROW(registry.expand("nonesuch"), std::invalid_argument);
}

TEST(RegistryTest, RegressionSuiteMeetsCoverageFloor) {
  const auto specs = ScenarioRegistry::builtin().expand("regression");
  EXPECT_GE(specs.size(), 40u);

  std::set<std::string> names;
  std::set<Architecture> architectures;
  std::set<ddl::cells::ProcessCorner> corners;
  for (const auto& spec : specs) {
    names.insert(spec.name);
    architectures.insert(spec.architecture);
    corners.insert(spec.corner.corner);
    EXPECT_GT(spec.periods, spec.measure_from) << spec.name;
  }
  EXPECT_EQ(names.size(), specs.size()) << "scenario names must be unique";
  EXPECT_GE(architectures.size(), 3u);
  EXPECT_GE(corners.size(), 3u);
}

TEST(RegistryTest, FilterSlicesBySubstring) {
  const auto& registry = ScenarioRegistry::builtin();
  const auto all = registry.expand("regression");
  const auto hybrids = registry.expand_filtered("regression", "/hybrid/");
  EXPECT_GT(hybrids.size(), 0u);
  EXPECT_LT(hybrids.size(), all.size());
  for (const auto& spec : hybrids) {
    EXPECT_EQ(spec.architecture, Architecture::kHybrid) << spec.name;
  }
  EXPECT_TRUE(registry.expand_filtered("regression", "nonesuch").empty());
}

TEST(RegistryTest, FindLocatesThePortedExampleWorkloads) {
  const auto& registry = ScenarioRegistry::builtin();
  const auto islands = registry.find("dvfs/proposed/typical/islands");
  EXPECT_EQ(islands.seed, 13u);
  EXPECT_EQ(islands.dvfs.size(), 3u);
  const auto trace = registry.find("dvfs/proposed/typical/power-trace");
  EXPECT_EQ(trace.seed, 5u);
  EXPECT_EQ(trace.load.kind, LoadSpec::Kind::kMarkov);
  EXPECT_THROW(registry.find("nonesuch"), std::invalid_argument);
}

ScenarioSpec quick_spec() {
  ScenarioSpec spec;
  spec.name = "test/proposed/typical/quick";
  spec.family = "test";
  spec.load = LoadSpec::constant(0.4);
  spec.periods = 900;
  spec.measure_from = 600;
  spec.allow_limit_cycling = true;  // 6-bit DPWM vs the 10 mV ADC window.
  spec.tolerance_v = 0.05;
  return spec;
}

TEST(RunScenarioTest, ClassifiesAHealthyRunAsPass) {
  const auto artifacts = ddl::scenario::run_scenario(quick_spec());
  EXPECT_TRUE(artifacts.result.locked);
  EXPECT_TRUE(artifacts.result.pass) << artifacts.result.failure_reason;
  EXPECT_TRUE(artifacts.result.failure_reason.empty());
  EXPECT_EQ(artifacts.result.periods, 900u);
  EXPECT_FALSE(artifacts.history.empty());
}

TEST(RunScenarioTest, ImpossibleToleranceFailsAsRegulationError) {
  auto spec = quick_spec();
  spec.tolerance_v = 1e-9;
  const auto artifacts = ddl::scenario::run_scenario(spec);
  EXPECT_FALSE(artifacts.result.pass);
  EXPECT_EQ(artifacts.result.failure_reason, "regulation_error");
}

TEST(RunScenarioTest, ExpectLockFalsePassesExactlyWhenCalibrationFails) {
  // The conventional line at the fast environmental corner cannot reach the
  // 1 MHz period (its max delay falls short), so lock must fail -- which the
  // spec declares as the *expected* outcome.
  ScenarioSpec spec = quick_spec();
  spec.architecture = Architecture::kConventional;
  spec.corner = ddl::cells::OperatingPoint::fast();
  spec.expect_lock = false;
  const auto artifacts = ddl::scenario::run_scenario(spec);
  EXPECT_FALSE(artifacts.result.locked);
  EXPECT_TRUE(artifacts.result.pass);

  // The same spec expecting a lock is classified as no_lock instead.
  spec.expect_lock = true;
  const auto failed = ddl::scenario::run_scenario(spec);
  EXPECT_FALSE(failed.result.pass);
  EXPECT_EQ(failed.result.failure_reason, "no_lock");
}

TEST(RunScenarioTest, FaultInjectionShiftsTheLockPoint) {
  auto healthy = quick_spec();
  auto faulty = quick_spec();
  faulty.faults = {FaultSpec::delay_cell(31, 10.0)};
  const auto h = ddl::scenario::run_scenario(healthy);
  const auto f = ddl::scenario::run_scenario(faulty);
  ASSERT_TRUE(h.result.locked);
  ASSERT_TRUE(f.result.locked);
  // A 10x slower cell inside the locked range shortens the tap chain.
  EXPECT_NE(h.result.lock_cycles, f.result.lock_cycles);
}

TEST(RunScenarioTest, JsonLineIsOneObjectWithStableHeader) {
  const auto artifacts = ddl::scenario::run_scenario(quick_spec());
  const std::string line = ddl::scenario::to_json_line(artifacts.result);
  EXPECT_EQ(line.find('\n'), std::string::npos);
  EXPECT_EQ(line.rfind("{\"schema_version\": 2, \"name\": ", 0), 0u) << line;
  // Thread-count and wall-clock never appear in a scenario record (the
  // determinism contract).
  EXPECT_EQ(line.find("threads"), std::string::npos);
  EXPECT_EQ(line.find("wall_ms"), std::string::npos);
}

TEST(ScenarioRunnerTest, DeterministicAcrossThreadCounts) {
  // The full determinism contract on the smoke suite: byte-identical JSONL
  // and identical verdict counts for 1, 2, 4 and default-thread runs.
  const auto specs = ScenarioRegistry::builtin().expand("smoke");
  const auto reference = ScenarioRunner(1).run(specs);
  const std::string reference_jsonl = ScenarioRunner::jsonl(reference);
  const auto reference_summary = ddl::scenario::summarize(reference);

  for (std::size_t threads : {std::size_t{2}, std::size_t{4}, std::size_t{0}}) {
    const auto results = ScenarioRunner(threads).run(specs);
    EXPECT_EQ(ScenarioRunner::jsonl(results), reference_jsonl)
        << "threads=" << threads;
    const auto summary = ddl::scenario::summarize(results);
    EXPECT_EQ(summary.passed, reference_summary.passed);
    EXPECT_EQ(summary.locked, reference_summary.locked);
    EXPECT_EQ(summary.failures, reference_summary.failures);
    EXPECT_EQ(summary.by_family, reference_summary.by_family);
  }
}

TEST(ScenarioRunnerTest, ResultsKeepSpecOrder) {
  auto specs = ScenarioRegistry::builtin().expand("smoke");
  const auto results = ScenarioRunner(2).run(specs);
  ASSERT_EQ(results.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(results[i].name, specs[i].name);
  }
}

// ---- Spec validation (cross-field checks) ---------------------------------

TEST(SpecValidationTest, FlagsOutOfRangeVictimAndBadSeverity) {
  auto spec = quick_spec();
  spec.faults = {FaultSpec::delay_cell(10'000, 10.0),
                 FaultSpec::delay_cell(3, -1.0)};
  const auto errors = ddl::scenario::validate(spec);
  ASSERT_EQ(errors.size(), 2u);
  EXPECT_NE(errors[0].find("fault 0 (delay_cell)"), std::string::npos)
      << errors[0];
  EXPECT_NE(errors[0].find("victim_cell 10000 out of range"),
            std::string::npos)
      << errors[0];
  EXPECT_NE(errors[1].find("severity"), std::string::npos) << errors[1];
  // Every message leads with the scenario name so batched reports stay
  // attributable.
  for (const auto& error : errors) {
    EXPECT_EQ(error.rfind(spec.name, 0), 0u) << error;
  }
}

TEST(SpecValidationTest, CounterArchitectureCannotCarryFaults) {
  auto spec = quick_spec();
  spec.architecture = Architecture::kCounter;
  spec.faults = {FaultSpec::delay_cell(0, 2.0)};
  const auto errors = ddl::scenario::validate(spec);
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NE(errors[0].find("no delay line"), std::string::npos) << errors[0];
}

TEST(SpecValidationTest, ClockPeriodStepsAreRejectedOnTheHybrid) {
  auto spec = quick_spec();
  spec.architecture = Architecture::kHybrid;
  spec.counter_bits = 3;
  spec.faults = {FaultSpec::clock_period_step(1.2, 100)};
  const auto errors = ddl::scenario::validate(spec);
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NE(errors[0].find("hybrid"), std::string::npos) << errors[0];
}

TEST(SpecValidationTest, FlagsMisorderedFaultSchedules) {
  auto spec = quick_spec();  // 900 periods.
  spec.faults = {FaultSpec::delay_cell(3, 2.0, /*at=*/900),
                 FaultSpec::delay_cell(3, 2.0, /*at=*/100, /*clear=*/50)};
  const auto errors = ddl::scenario::validate(spec);
  ASSERT_EQ(errors.size(), 2u);
  EXPECT_NE(errors[0].find("at_period 900"), std::string::npos) << errors[0];
  EXPECT_NE(errors[1].find("clear_period 50"), std::string::npos) << errors[1];
}

TEST(SpecValidationTest, RecoveryExpectationsRequireSupervision) {
  auto spec = quick_spec();
  spec.expect_relock = true;
  const auto errors = ddl::scenario::validate(spec);
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NE(errors[0].find("require supervision"), std::string::npos)
      << errors[0];
  // Enabling supervision clears the complaint.
  spec.supervision.enabled = true;
  EXPECT_TRUE(ddl::scenario::validate(spec).empty());
}

TEST(SpecValidationTest, EqualInjectAndClearPeriodsAreRejected) {
  auto spec = quick_spec();
  spec.faults = {FaultSpec::delay_cell(3, 2.0, /*at=*/400, /*clear=*/400)};
  const auto errors = ddl::scenario::validate(spec);
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NE(errors[0].find("clear_period 400"), std::string::npos)
      << errors[0];
  // One period of overlap is the minimum meaningful window.
  spec.faults = {FaultSpec::delay_cell(3, 2.0, 400, 401)};
  EXPECT_TRUE(ddl::scenario::validate(spec).empty());
}

TEST(SpecValidationTest, PowerOnFaultMayStillScheduleAClear) {
  auto spec = quick_spec();
  // at_period 0 means "present from power-on", and a nonzero clear is any
  // period after it -- including period 1.
  spec.faults = {FaultSpec::delay_cell(3, 2.0, /*at=*/0, /*clear=*/1)};
  EXPECT_TRUE(ddl::scenario::validate(spec).empty());
  // A clear may also land on (or past) the final period: the fault simply
  // never clears inside the run.
  spec.faults = {FaultSpec::delay_cell(3, 2.0, 400, spec.periods)};
  EXPECT_TRUE(ddl::scenario::validate(spec).empty());
}

TEST(SpecValidationTest, VictimIndexBoundaryIsExact) {
  auto spec = quick_spec();
  const std::size_t cells = spec.expected_line_cells();
  ASSERT_GT(cells, 0u);
  spec.faults = {FaultSpec::delay_cell(cells - 1, 2.0)};
  EXPECT_TRUE(ddl::scenario::validate(spec).empty());
  spec.faults = {FaultSpec::delay_cell(cells, 2.0)};
  const auto errors = ddl::scenario::validate(spec);
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NE(errors[0].find("out of range"), std::string::npos) << errors[0];
}

TEST(SpecValidationTest, LastPeriodInjectionIsValid) {
  auto spec = quick_spec();  // 900 periods.
  spec.faults = {FaultSpec::delay_cell(3, 2.0, /*at=*/899)};
  EXPECT_TRUE(ddl::scenario::validate(spec).empty());
}

TEST(RegistryTest, ChaosSuiteIsDeterministicallySeededAndValid) {
  const auto& registry = ScenarioRegistry::builtin();
  const auto first = registry.expand("chaos");
  const auto second = registry.expand("chaos");
  ASSERT_EQ(first.size(), 8u);
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].family, "chaos");
    EXPECT_EQ(first[i].name, second[i].name);
    ASSERT_EQ(first[i].faults.size(), second[i].faults.size());
    EXPECT_GE(first[i].faults.size(), 1u);
  }
}

TEST(RunScenarioTest, InvalidSpecFailsStructurallyInsteadOfThrowing) {
  auto spec = quick_spec();
  spec.faults = {FaultSpec::delay_cell(10'000, 10.0)};
  const auto artifacts = ddl::scenario::run_scenario(spec);
  EXPECT_FALSE(artifacts.result.pass);
  EXPECT_EQ(artifacts.result.failure_reason, "invalid_spec");
  EXPECT_NE(artifacts.result.failure_detail.find("victim_cell"),
            std::string::npos)
      << artifacts.result.failure_detail;
}

// ---- Recovery suite -------------------------------------------------------

TEST(RegistryTest, RecoverySuiteIsSupervisedAndValid) {
  const auto specs = ScenarioRegistry::builtin().expand("recovery");
  EXPECT_GE(specs.size(), 5u);
  for (const auto& spec : specs) {
    EXPECT_EQ(spec.family, "recovery") << spec.name;
    EXPECT_TRUE(spec.supervision.enabled) << spec.name;
    EXPECT_FALSE(spec.faults.empty()) << spec.name;
    EXPECT_TRUE(ddl::scenario::validate(spec).empty()) << spec.name;
  }
}

TEST(RunScenarioTest, RecoveryScenarioReportsLossAndRelockTelemetry) {
  const auto spec = ScenarioRegistry::builtin().find(
      "recovery/proposed/typical/cell-fault-relock");
  const auto artifacts = ddl::scenario::run_scenario(spec);
  const auto& result = artifacts.result;
  EXPECT_TRUE(result.pass) << result.failure_reason;
  EXPECT_TRUE(result.supervised);
  EXPECT_GE(result.lock_losses, 1u);
  EXPECT_GE(result.relocks, 1u);
  ASSERT_FALSE(result.health.empty());
  EXPECT_EQ(result.health.front().kind,
            ddl::core::HealthEventKind::kLockLost);
  // The mid-run fault strikes at its scheduled period, so the first loss
  // cannot predate it.
  EXPECT_GE(result.health.front().period, spec.faults.front().at_period);

  const std::string line =
      ddl::scenario::health_to_json(result, result.health.front())
          .to_json_line();
  EXPECT_EQ(line.rfind("{\"schema_version\": 2, \"scenario\": ", 0), 0u)
      << line;
  EXPECT_NE(line.find("\"event\": \"lock_lost\""), std::string::npos) << line;
}

TEST(ScenarioRunnerTest, RecoveryHealthStreamDeterministicAcrossThreads) {
  const auto specs = ScenarioRegistry::builtin().expand("recovery");
  const auto reference = ScenarioRunner(1).run(specs);
  const std::string reference_jsonl = ScenarioRunner::jsonl(reference);
  const std::string reference_health = ScenarioRunner::health_jsonl(reference);
  EXPECT_FALSE(reference_health.empty());

  for (std::size_t threads : {std::size_t{4}, std::size_t{0}}) {
    const auto results = ScenarioRunner(threads).run(specs);
    EXPECT_EQ(ScenarioRunner::jsonl(results), reference_jsonl)
        << "threads=" << threads;
    EXPECT_EQ(ScenarioRunner::health_jsonl(results), reference_health)
        << "threads=" << threads;
  }
}

TEST(SummarizeTest, CountsFailuresByReasonAndFamily) {
  std::vector<ddl::scenario::ScenarioResult> results(3);
  results[0].family = "a";
  results[0].pass = true;
  results[0].locked = true;
  results[1].family = "a";
  results[1].failure_reason = "no_lock";
  results[2].family = "b";
  results[2].locked = true;
  results[2].failure_reason = "regulation_error";
  const auto summary = ddl::scenario::summarize(results);
  EXPECT_EQ(summary.total, 3u);
  EXPECT_EQ(summary.passed, 1u);
  EXPECT_EQ(summary.locked, 2u);
  EXPECT_EQ(summary.failures.at("no_lock"), 1u);
  EXPECT_EQ(summary.failures.at("regulation_error"), 1u);
  EXPECT_EQ(summary.by_family.at("a").first, 1u);
  EXPECT_EQ(summary.by_family.at("a").second, 2u);
  EXPECT_EQ(summary.by_family.at("b").second, 1u);
}

TEST(McYieldTest, BatchedAndForcedScalarPathsEmitIdenticalJsonl) {
  // The satellite contract of the batched-engine adoption: pointing the
  // yield scenarios at mc_batch must be invisible in the JSONL stream --
  // every row byte-identical to the per-die scalar reference path.
  auto batched =
      ddl::scenario::ScenarioRegistry::builtin().expand("yield");
  ASSERT_FALSE(batched.empty());
  std::vector<ddl::scenario::ScenarioSpec> scalar = batched;
  for (ddl::scenario::ScenarioSpec& spec : scalar) {
    spec.mc_force_scalar = true;
  }

  const ddl::scenario::ScenarioRunner runner(2);
  const auto batched_results = runner.run(batched);
  const auto scalar_results = runner.run(scalar);
  EXPECT_EQ(ddl::scenario::ScenarioRunner::jsonl(batched_results),
            ddl::scenario::ScenarioRunner::jsonl(scalar_results));
  for (const auto& result : batched_results) {
    EXPECT_TRUE(result.pass) << result.name << ": " << result.failure_reason;
    EXPECT_GT(result.mc_dies, 0u);
    EXPECT_GT(result.mc_yield, 0.0);
  }
}

TEST(McYieldTest, YieldRowCarriesTheMcFieldsOnly) {
  auto specs = ddl::scenario::ScenarioRegistry::builtin().expand("yield");
  const auto result = ddl::scenario::run_scenario(specs.front()).result;
  const std::string line = ddl::scenario::to_json_line(result);
  EXPECT_NE(line.find("\"mc_yield\":"), std::string::npos);
  EXPECT_NE(line.find("\"mc_inl_max_lsb\":"), std::string::npos);
  // Non-yield rows must not grow the fields (the stream stays byte-stable
  // with pre-yield consumers).
  auto smoke = ddl::scenario::ScenarioRegistry::builtin().expand("smoke");
  const auto plain = ddl::scenario::run_scenario(smoke.front()).result;
  EXPECT_EQ(ddl::scenario::to_json_line(plain).find("\"mc_"),
            std::string::npos);
}

TEST(BatchPlanTest, ClassifiesEligibilityAndGroupsByKernelConstants) {
  ddl::scenario::ScenarioWorkspace workspace;
  const auto yield = ScenarioRegistry::builtin().expand("yield");
  ASSERT_EQ(yield.size(), 4u);
  for (const ScenarioSpec& spec : yield) {
    EXPECT_TRUE(ddl::scenario::batch_eligible(spec, workspace)) << spec.name;
  }

  // Anything that must take the scalar path -- a forced-scalar flag, a
  // debug hook, a runtime fault schedule (invalid for MC yield, so its
  // invalid_spec row must render through the guarded path), or a plain
  // non-MC scenario -- is ineligible.
  ScenarioSpec forced = yield.front();
  forced.mc_force_scalar = true;
  ScenarioSpec hooked = yield.front();
  hooked.debug_throw = true;
  ScenarioSpec scheduled = yield.front();
  scheduled.faults = {FaultSpec::delay_cell(1, 2.0, 100)};
  const ScenarioSpec plain =
      ScenarioRegistry::builtin().expand("smoke").front();
  for (const ScenarioSpec* spec :
       std::initializer_list<const ScenarioSpec*>{&forced, &hooked, &scheduled,
                                                  &plain}) {
    EXPECT_FALSE(ddl::scenario::batch_eligible(*spec, workspace))
        << spec->name;
  }

  // The planner keeps the three corners apart (their kernel constants
  // differ) and packs the faulted typical-corner variant with its clean
  // sibling -- faults are per-die state, invisible to the group key --
  // while ineligible specs keep their positions on the scalar list.
  std::vector<ScenarioSpec> mixed;
  mixed.push_back(plain);
  for (const ScenarioSpec& spec : yield) {
    mixed.push_back(spec);
  }
  mixed.push_back(forced);
  const auto plan = ddl::scenario::plan_batches(mixed, workspace);
  EXPECT_EQ(plan.scalar, (std::vector<std::size_t>{0, 5}));
  ASSERT_EQ(plan.groups.size(), 3u);
  std::size_t members = 0;
  std::size_t widest = 0;
  for (const auto& group : plan.groups) {
    members += group.members.size();
    widest = std::max(widest, group.members.size());
  }
  EXPECT_EQ(members, 4u);
  EXPECT_EQ(widest, 2u);
}

TEST(BatchPlanTest, PlannedRunMatchesPerScenarioRowsAtEveryJobCount) {
  // The whole byte-identity contract in one sweep: a mixed list -- MC
  // yield (planned into packed kernel lanes) plus the smoke suite (scalar
  // shards) -- must emit exactly the rows of one-scenario-at-a-time
  // run_scenario calls, at every thread count.
  std::vector<ScenarioSpec> specs = ScenarioRegistry::builtin().expand("yield");
  for (ScenarioSpec& spec : ScenarioRegistry::builtin().expand("smoke")) {
    specs.push_back(std::move(spec));
  }

  std::vector<ddl::scenario::ScenarioResult> reference;
  reference.reserve(specs.size());
  for (const ScenarioSpec& spec : specs) {
    reference.push_back(ddl::scenario::run_scenario(spec).result);
  }
  const std::string jsonl = ScenarioRunner::jsonl(reference);
  const std::string health = ScenarioRunner::health_jsonl(reference);

  for (std::size_t threads : {std::size_t{1}, std::size_t{4}, std::size_t{0}}) {
    const auto results = ScenarioRunner(threads).run(specs);
    EXPECT_EQ(ScenarioRunner::jsonl(results), jsonl) << "threads=" << threads;
    EXPECT_EQ(ScenarioRunner::health_jsonl(results), health)
        << "threads=" << threads;
  }
}

TEST(SpecValidationTest, McYieldRulesAreEnforced) {
  ddl::scenario::ScenarioSpec spec;
  spec.name = "yield/bad";
  spec.mc_dies = 16;
  spec.architecture = ddl::scenario::Architecture::kConventional;
  EXPECT_FALSE(ddl::scenario::validate(spec).empty());

  spec.architecture = ddl::scenario::Architecture::kProposed;
  EXPECT_TRUE(ddl::scenario::validate(spec).empty());

  // Runtime faults cannot ride a yield experiment; power-on delay faults
  // can (they become per-die BatchFaults).
  spec.faults = {ddl::scenario::FaultSpec::delay_cell(1, 2.0, 100)};
  EXPECT_FALSE(ddl::scenario::validate(spec).empty());
  spec.faults = {ddl::scenario::FaultSpec::delay_cell(1, 2.0)};
  EXPECT_TRUE(ddl::scenario::validate(spec).empty());

  spec.mc_min_yield = 1.5;
  EXPECT_FALSE(ddl::scenario::validate(spec).empty());
  spec.mc_min_yield = 0.5;
  spec.supervision.enabled = true;
  EXPECT_FALSE(ddl::scenario::validate(spec).empty());
}

}  // namespace
