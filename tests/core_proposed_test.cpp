// Tests for the proposed delay line, its half-period-locking controller and
// the duty-word mapper (thesis sections 3.1.2, 3.2.2).
#include <gtest/gtest.h>

#include <cmath>

#include "ddl/core/calibrated_dpwm.h"
#include "ddl/core/proposed_controller.h"
#include "ddl/core/proposed_line.h"

namespace ddl::core {
namespace {

using cells::OperatingPoint;

const cells::Technology kTech = cells::Technology::i32nm_class();
constexpr double kPeriod100MHz = 10'000.0;  // ps

ProposedLineConfig config_100mhz() {
  return ProposedLineConfig{256, 2};  // The section 4.2.2 design.
}

TEST(ProposedLine, RejectsBadConfigs) {
  EXPECT_THROW(ProposedDelayLine(kTech, ProposedLineConfig{100, 2}),
               std::invalid_argument);
  EXPECT_THROW(ProposedDelayLine(kTech, ProposedLineConfig{256, 0}),
               std::invalid_argument);
}

TEST(ProposedLine, NominalCellDelayIsBuffersTimesBuffer) {
  ProposedDelayLine line(kTech, config_100mhz());
  EXPECT_DOUBLE_EQ(line.nominal_cell_delay_ps(), 80.0);  // 2 x 40 ps.
}

TEST(ProposedLine, InputWordBitsMatchDesignExample) {
  EXPECT_EQ(config_100mhz().input_word_bits(), 8);  // 256 taps -> 8 bits.
}

TEST(ProposedLine, TapDelaysAreCumulativeAndUniformWithoutMismatch) {
  ProposedDelayLine line(kTech, config_100mhz());
  const auto op = OperatingPoint::typical();
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(line.tap_delay_ps(i, op), 80.0 * (i + 1));
  }
}

TEST(ProposedLine, CornersScaleTapDelaysByProcessFactor) {
  ProposedDelayLine line(kTech, config_100mhz());
  // Section 4.2.2: fast-corner full line = 256 x 2 x 20 ps = 10.24 ns.
  EXPECT_DOUBLE_EQ(line.tap_delay_ps(255, OperatingPoint::fast_process_only()),
                   10'240.0);
  EXPECT_DOUBLE_EQ(line.tap_delay_ps(255, OperatingPoint::slow_process_only()),
                   40'960.0);
}

TEST(ProposedLine, MismatchedDieIsMonotonicAndNearNominal) {
  ProposedDelayLine line(kTech, config_100mhz(), /*seed=*/77);
  const auto taps = line.tap_delays(OperatingPoint::typical());
  for (std::size_t i = 1; i < taps.size(); ++i) {
    EXPECT_GT(taps[i], taps[i - 1]);
  }
  // Whole-line delay within a few percent of nominal (sigma 2% per buffer,
  // averaged over 512 buffers).
  EXPECT_NEAR(taps.back(), 256 * 80.0, 256 * 80.0 * 0.02);
}

TEST(ProposedLine, SameSeedSameDie) {
  ProposedDelayLine a(kTech, config_100mhz(), 5);
  ProposedDelayLine b(kTech, config_100mhz(), 5);
  const auto op = OperatingPoint::typical();
  EXPECT_DOUBLE_EQ(a.tap_delay_ps(100, op), b.tap_delay_ps(100, op));
}

// ---- Controller -----------------------------------------------------------

TEST(ProposedController, LocksToHalfPeriodAtTypical) {
  ProposedDelayLine line(kTech, config_100mhz());
  ProposedController controller(line, kPeriod100MHz);
  const auto op = OperatingPoint::typical();
  const auto cycles = controller.run_to_lock(op);
  ASSERT_TRUE(cycles.has_value());
  // Half period = 5 ns; typical cell = 80 ps -> tap ~ 62.
  EXPECT_NEAR(static_cast<double>(controller.tap_sel()), 62.0, 2.0);
  // The thesis's claim: locking takes about one cycle per cell walked.
  EXPECT_NEAR(static_cast<double>(*cycles), 62.0, 4.0);
}

struct CornerCase {
  OperatingPoint op;
  double expected_tap;
};

class ProposedLockAcrossCorners : public ::testing::TestWithParam<CornerCase> {
};

TEST_P(ProposedLockAcrossCorners, TapSelTracksCellDelay) {
  const auto& param = GetParam();
  ProposedDelayLine line(kTech, config_100mhz());
  ProposedController controller(line, kPeriod100MHz);
  ASSERT_TRUE(controller.run_to_lock(param.op).has_value());
  EXPECT_NEAR(static_cast<double>(controller.tap_sel()), param.expected_tap,
              2.0);
}

// Section 3.1.2: many cells lock at the fast corner, few at the slow one.
INSTANTIATE_TEST_SUITE_P(
    Corners, ProposedLockAcrossCorners,
    ::testing::Values(
        CornerCase{OperatingPoint::fast_process_only(), 125.0},  // 5ns/40ps
        CornerCase{OperatingPoint::typical(), 62.5},             // 5ns/80ps
        CornerCase{OperatingPoint::slow_process_only(), 31.25}));

TEST(ProposedController, LockedStateTogglesAroundBoundary) {
  ProposedDelayLine line(kTech, config_100mhz());
  ProposedController controller(line, kPeriod100MHz);
  const auto op = OperatingPoint::typical();
  ASSERT_TRUE(controller.run_to_lock(op).has_value());
  const std::size_t locked_tap = controller.tap_sel();
  // Continuous calibration: further steps dither within +/-1 tap.
  for (int i = 0; i < 20; ++i) {
    controller.step(op);
    EXPECT_NEAR(static_cast<double>(controller.tap_sel()),
                static_cast<double>(locked_tap), 1.0);
    EXPECT_EQ(controller.status(), LockStatus::kLocked);
  }
}

TEST(ProposedController, AtLimitWhenLineTooShort) {
  // A tiny line cannot cover half of a long period.
  ProposedDelayLine line(kTech, ProposedLineConfig{16, 1});
  ProposedController controller(line, /*period=*/1e6);
  EXPECT_FALSE(controller.run_to_lock(OperatingPoint::typical()).has_value());
  EXPECT_EQ(controller.status(), LockStatus::kAtLimit);
}

TEST(ProposedController, RecoversFromHighAtLimitWhenPeriodBecomesFeasible) {
  // kAtLimit is a condition, not a latch: pinned at the far end of the line
  // because the half-period point lies beyond it, the controller must
  // resume the search (clamp-and-reverse) once the period becomes feasible.
  ProposedDelayLine line(kTech, config_100mhz());  // Max delay 20.48 ns.
  ProposedController controller(line, /*period=*/50'000.0);  // Half = 25 ns.
  const auto op = OperatingPoint::typical();
  EXPECT_FALSE(controller.run_to_lock(op).has_value());
  EXPECT_EQ(controller.status(), LockStatus::kAtLimit);
  EXPECT_EQ(controller.tap_sel(), line.size() - 1);

  // 30 ns is reachable (half = 15 ns < 20.48 ns): the clamp releases and
  // the search walks back down the line.
  controller.set_clock_period_ps(30'000.0);
  ASSERT_TRUE(controller.run_to_lock(op).has_value());
  EXPECT_EQ(controller.status(), LockStatus::kLocked);
  EXPECT_NEAR(static_cast<double>(controller.tap_sel()), 15'000.0 / 80.0, 2.0);
}

TEST(ProposedController, RecoversFromHighAtLimitWhenEnvironmentSlows) {
  // Same clamp, released by the environment instead of the period: at the
  // slow process corner the cells are twice as long, so the half-period
  // point moves back inside the line and the pinned search resumes.
  ProposedDelayLine line(kTech, config_100mhz());
  ProposedController controller(line, /*period=*/50'000.0);
  EXPECT_FALSE(controller.run_to_lock(OperatingPoint::typical()).has_value());
  EXPECT_EQ(controller.status(), LockStatus::kAtLimit);

  const auto slow = OperatingPoint::slow_process_only();  // 160 ps cells.
  ASSERT_TRUE(controller.run_to_lock(slow).has_value());
  EXPECT_EQ(controller.status(), LockStatus::kLocked);
  EXPECT_NEAR(static_cast<double>(controller.tap_sel()), 25'000.0 / 160.0,
              2.0);
}

TEST(ProposedController, RecoversFromLowAtLimitWhenPeriodBecomesFeasible) {
  // The opposite clamp: a period shorter than two cells pins tap_sel at 0.
  ProposedDelayLine line(kTech, config_100mhz());
  ProposedController controller(line, /*period=*/100.0);  // Half = 50 < 80 ps.
  const auto op = OperatingPoint::typical();
  EXPECT_FALSE(controller.run_to_lock(op).has_value());
  EXPECT_EQ(controller.status(), LockStatus::kAtLimit);
  EXPECT_EQ(controller.tap_sel(), 0u);

  controller.set_clock_period_ps(kPeriod100MHz);
  ASSERT_TRUE(controller.run_to_lock(op).has_value());
  EXPECT_EQ(controller.status(), LockStatus::kLocked);
  EXPECT_NEAR(static_cast<double>(controller.tap_sel()), 62.0, 2.0);
}

TEST(ProposedController, TracksTemperatureDrift) {
  ProposedDelayLine line(kTech, config_100mhz());
  ProposedController controller(line, kPeriod100MHz);
  OperatingPoint op = OperatingPoint::typical();
  ASSERT_TRUE(controller.run_to_lock(op).has_value());
  const std::size_t cool_tap = controller.tap_sel();
  // Heat the die 100 C: cells slow ~12%, fewer lock to the half period.
  op.temperature_c = 125.0;
  for (int i = 0; i < 50; ++i) {
    controller.step(op);
  }
  const std::size_t hot_tap = controller.tap_sel();
  EXPECT_LT(hot_tap, cool_tap);
  const double expected =
      (kPeriod100MHz / 2.0) / (80.0 * cells::delay_derating(op));
  EXPECT_NEAR(static_cast<double>(hot_tap), expected, 2.0);
}

TEST(ProposedController, SamplingMarginShrinksNearLock) {
  ProposedDelayLine line(kTech, config_100mhz());
  ProposedController controller(line, kPeriod100MHz);
  const auto op = OperatingPoint::typical();
  const double start_margin = controller.sampling_margin_ps(op);
  ASSERT_TRUE(controller.run_to_lock(op).has_value());
  EXPECT_LT(controller.sampling_margin_ps(op), start_margin);
  // At lock the margin is below one cell delay.
  EXPECT_LE(controller.sampling_margin_ps(op), 80.0);
}

// ---- Mapper (Eq 18) --------------------------------------------------------

TEST(DutyMapper, Section312WorkedExample) {
  // Section 3.1.2: clock 20 ns, cell typical 1 ns (0.5 fast / 2 slow);
  // duty 50%.  Typical: tap 10; fast: tap 20; slow: tap 5.
  // With a 32-cell line (power of two >= the example), full scale = 32.
  DutyMapper mapper(32);
  const std::uint64_t duty_50pct = 16;  // Half of full scale.
  // tap_sel = cells in HALF the period: typ 10, fast 20, slow 5.
  EXPECT_EQ(mapper.map(duty_50pct, 10), 10u);
  EXPECT_EQ(mapper.map(duty_50pct, 20), 20u);
  EXPECT_EQ(mapper.map(duty_50pct, 5), 5u);
}

TEST(DutyMapper, FullScaleMapsToFullPeriod) {
  DutyMapper mapper(256);
  // tap_sel = 62 (typical 100 MHz lock): full-scale word 255 maps just
  // under 2 * tap_sel.
  EXPECT_EQ(mapper.map(255, 62), (255u * 62u) >> 7);
  EXPECT_LE(mapper.map(255, 62), 2u * 62u);
}

TEST(DutyMapper, TruncationCreatesStaircaseAtSlowCorner) {
  DutyMapper mapper(256);
  // Slow corner: tap_sel = 31; 256 input words squeeze into 62 taps, so
  // consecutive words often map to the same tap (Figure 50's staircase).
  int repeats = 0;
  for (std::uint64_t d = 1; d < 256; ++d) {
    if (mapper.map(d, 31) == mapper.map(d - 1, 31)) {
      ++repeats;
    }
  }
  EXPECT_GT(repeats, 150);
}

TEST(DutyMapper, FastCornerUsesDistinctTaps) {
  DutyMapper mapper(256);
  // Fast corner: tap_sel = 125 -> nearly every word gets its own tap
  // (Figure 51).
  int repeats = 0;
  for (std::uint64_t d = 1; d < 256; ++d) {
    if (mapper.map(d, 125) == mapper.map(d - 1, 125)) {
      ++repeats;
    }
  }
  EXPECT_LT(repeats, 10);
}

TEST(DutyMapper, MapIsMonotoneAndClamped) {
  DutyMapper mapper(256);
  for (std::size_t tap_sel : {31u, 62u, 125u, 200u}) {
    std::size_t previous = 0;
    for (std::uint64_t d = 0; d < 256; ++d) {
      const std::size_t mapped = mapper.map(d, tap_sel);
      EXPECT_GE(mapped, previous);
      EXPECT_LT(mapped, 256u);
      previous = mapped;
    }
  }
}

TEST(DutyMapper, RoundingModeStaysWithinOneTapOfTruncation) {
  DutyMapper truncating(256, false);
  DutyMapper rounding(256, true);
  for (std::uint64_t d = 0; d < 256; d += 7) {
    const auto t = truncating.map(d, 62);
    const auto r = rounding.map(d, 62);
    EXPECT_LE(r - t, 1u);
    EXPECT_GE(r, t);
  }
}

// ---- Full system facade ----------------------------------------------------

TEST(ProposedDpwmSystem, CalibratesThenGeneratesRequestedDuty) {
  ProposedDelayLine line(kTech, config_100mhz());
  ProposedDpwmSystem system(line, kPeriod100MHz);
  ASSERT_TRUE(system.calibrate().has_value());
  // 50% duty = word 128 of 256.
  const auto pwm = system.generate(0, 128);
  EXPECT_NEAR(pwm.duty(), 0.5, 0.02);
}

class ProposedSystemCorners : public ::testing::TestWithParam<OperatingPoint> {
};

TEST_P(ProposedSystemCorners, DutyErrorBoundedAfterCalibration) {
  ProposedDelayLine line(kTech, config_100mhz());
  ProposedDpwmSystem system(line, kPeriod100MHz);
  system.set_environment(EnvironmentSchedule(GetParam()));
  ASSERT_TRUE(system.calibrate().has_value());
  // Sweep duty words; the executed duty must track word/256 within the
  // corner's quantization (slow corner: ~62 usable taps -> ~1.6% steps).
  for (std::uint64_t word = 16; word < 256; word += 16) {
    const auto pwm = system.generate(0, word);
    const double requested = static_cast<double>(word) / 256.0;
    EXPECT_NEAR(pwm.duty(), requested, 0.035)
        << "word " << word << " corner " << to_string(GetParam().corner);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Corners, ProposedSystemCorners,
    ::testing::Values(OperatingPoint::fast_process_only(),
                      OperatingPoint::typical(),
                      OperatingPoint::slow_process_only()));

TEST(ProposedDpwmSystem, UncalibratedSlowCornerExecutesWrongDuty) {
  // The Figure 28 motivation: without calibration the same tap yields a
  // very different duty at a different corner.
  ProposedDelayLine line(kTech, config_100mhz());
  ProposedDpwmSystem system(line, kPeriod100MHz);
  ASSERT_TRUE(system.calibrate().has_value());  // Calibrated at typical...
  system.set_environment(
      EnvironmentSchedule(OperatingPoint::slow_process_only()));
  // ...but queried at slow without recalibrating long enough: first period
  // still uses the typical tap_sel, so 25% requested executes ~50%.
  const auto pwm = system.generate(0, 64);
  EXPECT_GT(pwm.duty(), 0.40);
}

TEST(ProposedDpwmSystem, ContinuousCalibrationRecoversFromDrift) {
  ProposedDelayLine line(kTech, config_100mhz());
  ProposedDpwmSystem system(line, kPeriod100MHz);
  // Temperature ramps +50 C over the first 10 us.
  system.set_environment(EnvironmentSchedule(OperatingPoint::typical())
                             .with_temperature_ramp(5.0));
  ASSERT_TRUE(system.calibrate().has_value());
  // Run 2000 periods (20 us); the controller steps once per period.
  sim::Time t = 0;
  dpwm::PwmPeriod last;
  for (int i = 0; i < 2000; ++i) {
    last = system.generate(t, 128);
    t += system.period_ps();
  }
  EXPECT_NEAR(last.duty(), 0.5, 0.02);
}

}  // namespace
}  // namespace ddl::core
