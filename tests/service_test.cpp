// Tests for the campaign service: frame codec robustness (checksummed v2
// framing, poison permanence), the submit / stream / job_done round trip
// (byte-identical to the one-shot runner), quota backpressure as a frame
// (never a disconnect), fair round-robin scheduling across clients,
// mid-stream disconnect survival, journal-backed restart resume, structured
// error frames for malformed submissions, cooperative cancel with
// journal-consistent teardown, replay-bundle jobs, liveness timeouts
// (dead-peer and slowloris), per-tick adversarial budgets, and seeded
// chaos-proxy storms that must converge byte-identically anyway.
//
// Every test binds an ephemeral loopback port (or a temp-dir unix socket),
// so the suite is parallel-safe and needs no fixed resources.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <functional>
#include <filesystem>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "ddl/scenario/chaos.h"
#include "ddl/scenario/registry.h"
#include "ddl/scenario/runner.h"
#include "ddl/scenario/spec.h"
#include "ddl/service/chaos_proxy.h"
#include "ddl/service/client.h"
#include "ddl/service/net_util.h"
#include "ddl/service/protocol.h"
#include "ddl/service/server.h"

namespace {

namespace fs = std::filesystem;

using ddl::scenario::LoadSpec;
using ddl::scenario::ScenarioRunner;
using ddl::scenario::ScenarioSpec;
using ddl::service::ChaosProxy;
using ddl::service::ChaosProxyConfig;
using ddl::service::ClientConfig;
using ddl::service::FrameReader;
using ddl::service::ResilientClientConfig;
using ddl::service::ResilientScenarioClient;
using ddl::service::ScenarioClient;
using ddl::service::ScenarioServer;
using ddl::service::ServiceConfig;

/// A fast proposed-line scenario (~15 ms): long enough to be a real
/// closed-loop run, short enough that suites of them stay snappy.
/// `periods` also doubles as the pacing knob -- the scheduling tests
/// stretch it to hold workers busy deterministically.
ScenarioSpec quick_spec(const std::string& variant, std::uint64_t seed,
                        std::uint64_t periods = 900) {
  ScenarioSpec spec;
  spec.name = "svc/proposed/typical/" + variant;
  spec.family = "svc";
  spec.seed = seed;
  spec.load = LoadSpec::constant(0.4);
  spec.periods = periods;
  spec.measure_from = (periods * 2) / 3;
  spec.allow_limit_cycling = true;
  spec.tolerance_v = 0.05;
  return spec;
}

/// A supervised variant so the stream carries health frames too.
ScenarioSpec supervised_spec() {
  ScenarioSpec spec = quick_spec("supervised", 7);
  spec.tolerance_v = 0.06;
  spec.load = LoadSpec::constant(0.5);
  spec.supervision.enabled = true;
  spec.faults = {ddl::scenario::FaultSpec::delay_cell(31, 10.0, 400)};
  return spec;
}

std::string fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("service_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

ServiceConfig base_config() {
  ServiceConfig config;
  config.tcp_port = 0;  // Ephemeral.
  config.workers = 2;
  config.heartbeat_ms = 60'000;  // Out of the way unless a test wants it.
  return config;
}

ClientConfig client_for(const ScenarioServer& server, std::string name) {
  ClientConfig config;
  config.tcp_port = server.tcp_port();
  config.name = std::move(name);
  config.recv_timeout_ms = 30'000;  // A hung test fails, never wedges CI.
  return config;
}

/// Polls `done` every few milliseconds until it holds or the budget runs
/// out (the timeout tests watch server stats converge, not sleep blindly).
bool eventually(const std::function<bool()>& done,
                std::uint64_t budget_ms = 30'000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(budget_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (done()) {
      return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return done();
}

/// A bare loopback TCP connection: the adversarial tests drive the wire
/// by hand (half frames, silence) below anything ScenarioClient would do.
int raw_connect(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return -1;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

/// Completes the hello handshake on a raw socket and discards the reply.
bool raw_hello(int fd, const std::string& name) {
  ddl::analysis::JsonObject hello = ddl::service::make_frame("hello");
  hello.set("protocol_version",
            static_cast<std::uint64_t>(ddl::service::kProtocolVersion));
  hello.set("client", name);
  const std::string wire =
      ddl::service::encode_frame(hello.to_json_line());
  if (!ddl::service::net::send_all(fd, wire.data(), wire.size())) {
    return false;
  }
  FrameReader reader;
  char chunk[512];
  for (;;) {
    const ssize_t got = ::recv(fd, chunk, sizeof(chunk), 0);
    if (got <= 0) {
      return false;
    }
    reader.feed(chunk, static_cast<std::size_t>(got));
    if (reader.next().has_value()) {
      return true;
    }
  }
}

/// Reads until the peer closes; returns everything received.
std::string drain_to_eof(int fd) {
  std::string bytes;
  char chunk[512];
  ssize_t got = 0;
  while ((got = ::recv(fd, chunk, sizeof(chunk), 0)) > 0) {
    bytes.append(chunk, static_cast<std::size_t>(got));
  }
  return bytes;
}

// ---- Frame codec ----------------------------------------------------------

TEST(FrameCodecTest, RoundTripsAcrossArbitraryFragmentation) {
  const std::vector<std::string> payloads = {
      R"({"frame":"hello","protocol_version":1})",
      "",  // Zero-length payload is a legal frame.
      R"({"frame":"result","row":"{\"name\":\"a/b\",\"pass\":true}"})",
  };
  std::string wire;
  for (const std::string& payload : payloads) {
    wire += ddl::service::encode_frame(payload);
  }
  // Feed one byte at a time: every length prefix and payload is split.
  FrameReader reader;
  std::vector<std::string> decoded;
  for (const char byte : wire) {
    reader.feed(&byte, 1);
    while (auto payload = reader.next()) {
      decoded.push_back(*payload);
    }
  }
  EXPECT_EQ(decoded, payloads);
  EXPECT_FALSE(reader.failed());
  EXPECT_EQ(reader.buffered(), 0u);
}

TEST(FrameCodecTest, OversizedLengthPrefixPoisonsTheReader) {
  FrameReader reader;
  // ~2 GiB length word plus an arbitrary checksum word: a full v2 header.
  const unsigned char bogus[8] = {0x7f, 0x00, 0x00, 0x00,
                                  0xde, 0xad, 0xbe, 0xef};
  reader.feed(reinterpret_cast<const char*>(bogus), sizeof(bogus));
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_TRUE(reader.failed());
  EXPECT_NE(reader.error().find("exceeds"), std::string::npos);
  // Poisoned for good: further bytes never resynchronize.
  reader.feed(reinterpret_cast<const char*>(bogus), sizeof(bogus));
  EXPECT_FALSE(reader.next().has_value());
}

TEST(FrameCodecTest, ChecksumMismatchPoisonsTheReader) {
  std::string wire = ddl::service::encode_frame(R"({"frame":"ping"})");
  wire.back() ^= 0x20;  // One flipped payload bit -- the fuzzer's move.
  FrameReader reader;
  reader.feed(wire.data(), wire.size());
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_TRUE(reader.failed());
  EXPECT_NE(reader.error().find("checksum"), std::string::npos);
  EXPECT_EQ(reader.frames_decoded(), 0u);
}

TEST(FrameCodecTest, PoisonAfterValidFramesIsPermanent) {
  const std::string good = ddl::service::encode_frame(R"({"frame":"a"})");
  FrameReader reader;
  reader.feed(good.data(), good.size());
  ASSERT_TRUE(reader.next().has_value());
  EXPECT_EQ(reader.frames_decoded(), 1u);

  // An oversize length interleaved into a healthy stream...
  const unsigned char bogus[8] = {0x7f, 0, 0, 0, 0, 0, 0, 0};
  reader.feed(reinterpret_cast<const char*>(bogus), sizeof(bogus));
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_TRUE(reader.failed());

  // ...stays fatal even when perfectly valid frames follow: framing is
  // lost, so resynchronizing would risk decoding attacker-chosen bytes.
  reader.feed(good.data(), good.size());
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_TRUE(reader.failed());
  EXPECT_EQ(reader.frames_decoded(), 1u);
}

TEST(FrameCodecTest, TruncatedFrameYieldsNothingUntilTheBytesArrive) {
  const std::string wire = ddl::service::encode_frame(R"({"frame":"ping"})");
  FrameReader reader;
  reader.feed(wire.data(), wire.size() - 5);
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_FALSE(reader.failed());  // Incomplete, not corrupt.
  EXPECT_GT(reader.buffered(), 0u);
  EXPECT_EQ(reader.frames_decoded(), 0u);
  reader.feed(wire.data() + wire.size() - 5, 5);
  const auto payload = reader.next();
  ASSERT_TRUE(payload.has_value());
  EXPECT_EQ(*payload, R"({"frame":"ping"})");
  EXPECT_EQ(reader.frames_decoded(), 1u);
}

// ---- net_util -------------------------------------------------------------

TEST(NetUtilTest, RetryEintrRetriesInterruptedCallsOnly) {
  int calls = 0;
  const long result = ddl::service::net::retry_eintr([&]() -> long {
    if (++calls < 3) {
      errno = EINTR;
      return -1;
    }
    return 42;
  });
  EXPECT_EQ(result, 42);
  EXPECT_EQ(calls, 3);

  // Any other errno passes through untouched on the first call.
  calls = 0;
  errno = 0;
  const long failed = ddl::service::net::retry_eintr([&]() -> long {
    ++calls;
    errno = EPIPE;
    return -1;
  });
  EXPECT_EQ(failed, -1);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(errno, EPIPE);
}

TEST(FrameCodecTest, RowStringsSurviveTheEscapeRoundTrip) {
  // The acceptance-critical property: a JSONL row carried as a frame's
  // string field comes back byte-identical.
  const std::string row =
      R"({"schema_version":2,"name":"a/b","verdict":"pass","vout":0.9375})";
  ddl::analysis::JsonObject frame = ddl::service::make_frame("result");
  frame.set("row", row);
  const auto fields =
      ddl::service::parse_frame_payload(frame.to_json_line());
  ASSERT_TRUE(fields.has_value());
  EXPECT_EQ(fields->at("row"), row);
}

// ---- Submit / stream round trip -------------------------------------------

TEST(ServiceTest, StreamedRowsAreByteIdenticalToTheRunner) {
  const std::vector<ScenarioSpec> specs = {
      quick_spec("a", 11), supervised_spec(), quick_spec("b", 12)};

  ServiceConfig config = base_config();
  config.state_dir = fresh_dir("roundtrip");
  ScenarioServer server(config);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  ScenarioClient client(client_for(server, "alice"));
  ASSERT_TRUE(client.connect(&error)) << error;
  const auto submission = client.submit_specs("nightly", specs);
  ASSERT_TRUE(submission.accepted)
      << submission.error_code << ": " << submission.error_detail;
  EXPECT_FALSE(submission.resumed);
  EXPECT_EQ(submission.scenarios, specs.size());

  const auto outcome = client.wait(submission.job_id);
  ASSERT_TRUE(outcome.done)
      << outcome.error_code << ": " << outcome.error_detail;
  EXPECT_EQ(outcome.executed, specs.size());
  EXPECT_EQ(outcome.resumed, 0u);

  ScenarioRunner runner(2);
  const auto results = runner.run(specs);
  EXPECT_EQ(outcome.jsonl(), ScenarioRunner::jsonl(results));
  EXPECT_EQ(outcome.health_jsonl(), ScenarioRunner::health_jsonl(results));
  EXPECT_FALSE(outcome.health_jsonl().empty());

  client.bye();
  server.stop();
}

TEST(ServiceTest, UnixDomainSocketSpeaksTheSameProtocol) {
  const std::string dir = fresh_dir("unix");
  ServiceConfig config = base_config();
  config.enable_tcp = false;
  config.unix_path = dir + "/ddl.sock";
  ScenarioServer server(config);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;
  EXPECT_EQ(server.tcp_port(), 0);

  ClientConfig client_config;
  client_config.unix_path = config.unix_path;
  client_config.name = "unix-client";
  client_config.recv_timeout_ms = 30'000;
  ScenarioClient client(client_config);
  ASSERT_TRUE(client.connect(&error)) << error;
  EXPECT_TRUE(client.ping());

  const std::vector<ScenarioSpec> specs = {quick_spec("u", 21)};
  const auto submission = client.submit_specs("unix-job", specs);
  ASSERT_TRUE(submission.accepted);
  const auto outcome = client.wait(submission.job_id);
  ASSERT_TRUE(outcome.done);
  EXPECT_EQ(outcome.jsonl(),
            ScenarioRunner::jsonl(ScenarioRunner(1).run(specs)));
  server.stop();
  EXPECT_FALSE(fs::exists(config.unix_path));  // Unlinked on shutdown.
}

TEST(ServiceTest, ResubmittingTheSameJobReplaysInsteadOfRerunning) {
  const std::vector<ScenarioSpec> specs = {quick_spec("r1", 31),
                                           quick_spec("r2", 32)};
  ServiceConfig config = base_config();
  config.state_dir = fresh_dir("replay");
  ScenarioServer server(config);
  ASSERT_TRUE(server.start());

  ScenarioClient first(client_for(server, "carol"));
  ASSERT_TRUE(first.connect());
  const auto sub1 = first.submit_specs("batch", specs);
  ASSERT_TRUE(sub1.accepted);
  const auto out1 = first.wait(sub1.job_id);
  ASSERT_TRUE(out1.done);
  first.bye();

  ScenarioClient second(client_for(server, "carol"));
  ASSERT_TRUE(second.connect());
  const auto sub2 = second.submit_specs("batch", specs);
  ASSERT_TRUE(sub2.accepted);
  EXPECT_TRUE(sub2.resumed);
  EXPECT_EQ(sub2.job_id, sub1.job_id);
  const auto out2 = second.wait(sub2.job_id);
  ASSERT_TRUE(out2.done);
  EXPECT_EQ(out2.jsonl(), out1.jsonl());

  // Nothing ran twice: the second submit was pure replay.
  EXPECT_EQ(server.stats().scenarios_executed, specs.size());
  server.stop();
}

// ---- Quotas and backpressure ----------------------------------------------

TEST(ServiceTest, QuotaExceededIsABackpressureFrameNotADisconnect) {
  ServiceConfig config = base_config();
  config.workers = 1;
  config.max_pending_jobs_per_client = 1;
  ScenarioServer server(config);
  ASSERT_TRUE(server.start());

  ScenarioClient client(client_for(server, "dave"));
  ASSERT_TRUE(client.connect());

  // Job A holds the quota: one long scenario on the only worker.
  const std::vector<ScenarioSpec> slow = {quick_spec("slow", 41, 20'000)};
  const auto sub_a = client.submit_specs("job-a", slow);
  ASSERT_TRUE(sub_a.accepted);

  // Job B trips the quota: explicit, retryable backpressure.
  const std::vector<ScenarioSpec> fast = {quick_spec("fast", 42)};
  const auto sub_b = client.submit_specs("job-b", fast);
  EXPECT_FALSE(sub_b.accepted);
  EXPECT_TRUE(sub_b.backpressure);
  EXPECT_GT(sub_b.retry_ms, 0u);
  EXPECT_EQ(server.stats().backpressure_frames, 1u);

  // The session survives the rejection...
  EXPECT_TRUE(client.ping());
  ASSERT_TRUE(client.wait(sub_a.job_id).done);

  // ...and the retry goes through once the quota frees up.
  const auto retry = client.submit_specs("job-b", fast);
  ASSERT_TRUE(retry.accepted);
  EXPECT_TRUE(client.wait(retry.job_id).done);
  server.stop();
}

TEST(ServiceTest, CoalescedBatchDispatchKeepsTheStreamByteIdentical) {
  // One worker and a deep quota hand the scheduler a queue of pending
  // MC-yield scenarios from the same job, which it must coalesce into
  // multi-entry dispatch units (stats().batched_units counts them); the
  // streamed rows must still match the one-shot runner byte for byte,
  // with the runtime-faulted rider taking the scalar path inside the
  // same job.
  auto specs = ddl::scenario::ScenarioRegistry::builtin().expand("yield");
  specs.push_back(supervised_spec());

  ServiceConfig config = base_config();
  config.workers = 1;
  config.max_inflight_per_client = 8;
  ScenarioServer server(config);
  ASSERT_TRUE(server.start());

  ScenarioClient client(client_for(server, "batcher"));
  ASSERT_TRUE(client.connect());
  const auto submit = client.submit_specs("yield", specs);
  ASSERT_TRUE(submit.accepted);
  const auto outcome = client.wait(submit.job_id);
  ASSERT_TRUE(outcome.done);

  const auto reference = ScenarioRunner(1).run(specs);
  EXPECT_EQ(outcome.jsonl(), ScenarioRunner::jsonl(reference));
  EXPECT_EQ(outcome.health_jsonl(), ScenarioRunner::health_jsonl(reference));
  EXPECT_EQ(server.stats().scenarios_executed, specs.size());
  EXPECT_GT(server.stats().batched_units, 0u);
  server.stop();
}

TEST(ServiceTest, SchedulingIsFairRoundRobinAcrossClients) {
  ServiceConfig config = base_config();
  config.workers = 1;
  config.max_inflight_per_client = 1;
  config.record_dispatch_log = true;
  ScenarioServer server(config);
  ASSERT_TRUE(server.start());

  // A plug occupies the single worker (~400 ms) while the three measured
  // clients queue their jobs, so the dispatch order past the plug is a
  // pure function of the round-robin scheduler -- no submit-timing races.
  ScenarioClient plug(client_for(server, "plug"));
  ASSERT_TRUE(plug.connect());
  const auto plug_sub =
      plug.submit_specs("plug", {quick_spec("plug", 51, 20'000)});
  ASSERT_TRUE(plug_sub.accepted);

  std::vector<std::unique_ptr<ScenarioClient>> clients;
  std::vector<ScenarioClient::Submission> subs;
  for (const std::string name : {"c1", "c2", "c3"}) {
    auto client = std::make_unique<ScenarioClient>(client_for(server, name));
    ASSERT_TRUE(client->connect());
    std::vector<ScenarioSpec> specs;
    for (int i = 0; i < 3; ++i) {
      specs.push_back(
          quick_spec(name + "-" + std::to_string(i), 60 + i));
    }
    subs.push_back(client->submit_specs("fair", specs));
    ASSERT_TRUE(subs.back().accepted);
    clients.push_back(std::move(client));
  }
  ASSERT_TRUE(plug.wait(plug_sub.job_id).done);
  for (std::size_t i = 0; i < clients.size(); ++i) {
    ASSERT_TRUE(clients[i]->wait(subs[i].job_id).done);
  }

  const auto log = server.dispatch_log();
  ASSERT_EQ(log.size(), 10u);  // 1 plug + 3 clients x 3 scenarios.
  EXPECT_EQ(log[0], "plug");
  // Past the plug, every rotation serves all three clients exactly once.
  for (std::size_t i = 1; i + 2 < log.size(); i += 3) {
    const std::set<std::string> window(log.begin() + i, log.begin() + i + 3);
    EXPECT_EQ(window, (std::set<std::string>{"c1", "c2", "c3"}))
        << "rotation starting at dispatch " << i;
  }
  server.stop();
}

// ---- Disconnects and restarts ---------------------------------------------

TEST(ServiceTest, MidStreamDisconnectLeavesTheJobRunningAsAnOrphan) {
  const std::vector<ScenarioSpec> specs = {
      quick_spec("d1", 71, 4'000), quick_spec("d2", 72, 4'000),
      quick_spec("d3", 73, 4'000)};
  ServiceConfig config = base_config();
  config.state_dir = fresh_dir("disconnect");
  ScenarioServer server(config);
  ASSERT_TRUE(server.start());

  {
    ScenarioClient client(client_for(server, "erin"));
    ASSERT_TRUE(client.connect());
    const auto submission = client.submit_specs("orphaned", specs);
    ASSERT_TRUE(submission.accepted);
    client.close();  // Vanish mid-stream, no bye.
  }

  // The job keeps executing with no session attached and completes.
  ASSERT_TRUE(server.wait_all_jobs_done(60'000));
  EXPECT_EQ(server.stats().scenarios_executed, specs.size());

  // A reconnecting client replays the full stream byte-exactly.
  ScenarioClient client(client_for(server, "erin"));
  ASSERT_TRUE(client.connect());
  const auto submission = client.submit_specs("orphaned", specs);
  ASSERT_TRUE(submission.accepted);
  EXPECT_TRUE(submission.resumed);
  const auto outcome = client.wait(submission.job_id);
  ASSERT_TRUE(outcome.done);
  EXPECT_EQ(outcome.jsonl(),
            ScenarioRunner::jsonl(ScenarioRunner(1).run(specs)));
  EXPECT_EQ(server.stats().scenarios_executed, specs.size());
  server.stop();
}

TEST(ServiceTest, RestartResumesTheJournalWithoutRerunningAnything) {
  const std::string state_dir = fresh_dir("restart");
  std::vector<ScenarioSpec> specs;
  for (int i = 0; i < 4; ++i) {
    specs.push_back(quick_spec("res-" + std::to_string(i), 80 + i, 6'000));
  }

  std::size_t executed_before = 0;
  {
    ServiceConfig config = base_config();
    config.state_dir = state_dir;
    config.workers = 1;
    ScenarioServer server(config);
    ASSERT_TRUE(server.start());
    ScenarioClient client(client_for(server, "frank"));
    ASSERT_TRUE(client.connect());
    ASSERT_TRUE(client.submit_specs("long-haul", specs).accepted);
    // Let at least one scenario commit, then stop gracefully mid-job:
    // in-flight work finishes and journals, the rest stays pending.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (server.stats().scenarios_executed < 1 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    server.stop();
    executed_before = server.stats().scenarios_executed;
    ASSERT_GE(executed_before, 1u);
    ASSERT_LT(executed_before, specs.size());  // Stopped mid-job.
  }

  ServiceConfig config = base_config();
  config.state_dir = state_dir;
  ScenarioServer server(config);
  ASSERT_TRUE(server.start());
  EXPECT_EQ(server.stats().jobs_recovered, 1u);
  EXPECT_EQ(server.stats().scenarios_resumed, executed_before);
  // The orphan finishes without any client attached...
  ASSERT_TRUE(server.wait_all_jobs_done(60'000));
  // ...running only what the first server never committed.
  EXPECT_EQ(server.stats().scenarios_executed,
            specs.size() - executed_before);

  // And the reassembled stream is byte-identical to an uninterrupted run.
  ScenarioClient client(client_for(server, "frank"));
  ASSERT_TRUE(client.connect());
  const auto submission = client.submit_specs("long-haul", specs);
  ASSERT_TRUE(submission.accepted);
  EXPECT_TRUE(submission.resumed);
  const auto outcome = client.wait(submission.job_id);
  ASSERT_TRUE(outcome.done);
  EXPECT_EQ(outcome.executed + outcome.resumed, specs.size());
  EXPECT_EQ(outcome.jsonl(),
            ScenarioRunner::jsonl(ScenarioRunner(1).run(specs)));
  server.stop();
}

// ---- Error paths ----------------------------------------------------------

TEST(ServiceTest, MalformedSubmissionsGetStructuredErrorFrames) {
  ScenarioServer server(base_config());
  ASSERT_TRUE(server.start());
  ScenarioClient client(client_for(server, "mallory"));
  ASSERT_TRUE(client.connect());

  // Wrong-typed field inside a flattened spec.
  ddl::analysis::JsonObject bad_spec = ddl::service::make_frame("submit");
  bad_spec.set("job", "bad");
  bad_spec.set("spec_count", std::uint64_t{1});
  bad_spec.set("spec.0.name", "svc/x");
  bad_spec.set("spec.0.periods", "four-thousand");
  auto submission = client.submit_frame(bad_spec, "bad");
  EXPECT_FALSE(submission.accepted);
  EXPECT_EQ(submission.error_code, "invalid_spec");
  EXPECT_NE(submission.error_detail.find("spec.0.periods"),
            std::string::npos);

  // Unknown suite.
  submission = client.submit_suite("bad2", "no-such-suite");
  EXPECT_EQ(submission.error_code, "unknown_suite");

  // submit with neither suite nor specs.
  ddl::analysis::JsonObject empty = ddl::service::make_frame("submit");
  empty.set("job", "bad3");
  submission = client.submit_frame(empty, "bad3");
  EXPECT_EQ(submission.error_code, "invalid_submit");

  // A payload that is not JSON at all.
  ASSERT_TRUE(client.send_payload("certainly not json"));
  auto frame = client.next_frame();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->at("frame"), "error");
  EXPECT_EQ(frame->at("code"), "bad_frame");

  // An unknown frame type.
  ASSERT_TRUE(client.send_payload(
      ddl::service::make_frame("launch_missiles").to_json_line()));
  frame = client.next_frame();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->at("code"), "unknown_frame");

  // None of it cost the connection.
  EXPECT_TRUE(client.ping());
  EXPECT_GE(server.stats().error_frames, 4u);
  server.stop();
}

TEST(ServiceTest, ProtocolVersionMismatchIsRejectedExplicitly) {
  ScenarioServer server(base_config());
  ASSERT_TRUE(server.start());

  ClientConfig config = client_for(server, "old-client");
  ScenarioClient client(config);
  // Drive the handshake by hand with a wrong version.
  std::string error;
  ASSERT_TRUE(client.connect(&error)) << error;  // Good handshake first.
  ddl::analysis::JsonObject stale = ddl::service::make_frame("hello");
  stale.set("protocol_version", 999);
  stale.set("client", "old-client");
  ASSERT_TRUE(client.send_payload(stale.to_json_line()));
  const auto reply = client.next_frame();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->at("frame"), "error");
  EXPECT_EQ(reply->at("code"), "protocol_mismatch");
  server.stop();
}

TEST(ServiceTest, HeartbeatsFlowOnAnIdleConnection) {
  ServiceConfig config = base_config();
  config.heartbeat_ms = 50;
  ScenarioServer server(config);
  ASSERT_TRUE(server.start());
  ScenarioClient client(client_for(server, "idle"));
  ASSERT_TRUE(client.connect());
  const auto frame = client.next_frame();  // Blocks until the beat.
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->at("frame"), "heartbeat");
  server.stop();
}

// ---- Cancel ---------------------------------------------------------------

TEST(ServiceTest, CancelTearsDownCooperativelyAndSurvivesRestart) {
  const std::string state_dir = fresh_dir("cancel");
  std::vector<ScenarioSpec> specs;
  for (int i = 0; i < 4; ++i) {
    specs.push_back(quick_spec("cx" + std::to_string(i), 90 + i, 20'000));
  }

  {
    ServiceConfig config = base_config();
    config.state_dir = state_dir;
    config.workers = 1;
    ScenarioServer server(config);
    ASSERT_TRUE(server.start());
    ScenarioClient client(client_for(server, "grace"));
    ASSERT_TRUE(client.connect());
    const auto submission = client.submit_specs("doomed", specs);
    ASSERT_TRUE(submission.accepted);

    // Cancel once real work is in flight: the claimed scenario must
    // finish and journal (cooperative), the queued ones must never run.
    ASSERT_TRUE(eventually(
        [&] { return server.stats().scenarios_executed >= 1; }));
    ASSERT_TRUE(client.cancel("doomed"));
    const auto outcome = client.wait(submission.job_id);
    EXPECT_TRUE(outcome.cancelled)
        << outcome.error_code << ": " << outcome.error_detail;
    EXPECT_FALSE(outcome.done);
    EXPECT_EQ(server.stats().jobs_cancelled, 1u);
    const std::size_t executed = server.stats().scenarios_executed;
    EXPECT_GE(executed, 1u);
    EXPECT_LT(executed, specs.size());

    // Cancelling again is idempotent: the terminal frame, not an error.
    ASSERT_TRUE(client.cancel("doomed"));
    const auto again = client.next_frame();
    ASSERT_TRUE(again.has_value());
    EXPECT_EQ(again->at("frame"), "cancelled");
    client.bye();
    server.stop();
  }

  // Restart: the cancelled job is recovered for replay but scheduled
  // never -- a restart reschedules nothing that was cancelled.
  ServiceConfig config = base_config();
  config.state_dir = state_dir;
  config.workers = 1;
  ScenarioServer server(config);
  ASSERT_TRUE(server.start());
  EXPECT_EQ(server.stats().jobs_recovered, 1u);
  ASSERT_TRUE(server.wait_all_jobs_done(5'000));  // Nothing is active.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_EQ(server.stats().scenarios_executed, 0u);

  // Resubmission attaches, replays the committed rows, and reports the
  // job's terminal state as cancelled rather than silently rerunning it.
  ScenarioClient client(client_for(server, "grace"));
  ASSERT_TRUE(client.connect());
  const auto resubmission = client.submit_specs("doomed", specs);
  ASSERT_TRUE(resubmission.accepted);
  EXPECT_TRUE(resubmission.resumed);
  const auto replayed = client.wait(resubmission.job_id);
  EXPECT_TRUE(replayed.cancelled);
  EXPECT_FALSE(replayed.done);
  EXPECT_EQ(server.stats().scenarios_executed, 0u);
  server.stop();
}

TEST(ServiceTest, CancellingAnUnknownOrFinishedJobIsAStructuredError) {
  ScenarioServer server(base_config());
  ASSERT_TRUE(server.start());
  ScenarioClient client(client_for(server, "judy"));
  ASSERT_TRUE(client.connect());

  ASSERT_TRUE(client.cancel("never-submitted"));
  auto frame = client.next_frame();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->at("frame"), "error");
  EXPECT_EQ(frame->at("code"), "unknown_job");

  const auto submission =
      client.submit_specs("quick", {quick_spec("cq", 99)});
  ASSERT_TRUE(submission.accepted);
  ASSERT_TRUE(client.wait(submission.job_id).done);
  ASSERT_TRUE(client.cancel("quick"));
  frame = client.next_frame();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->at("frame"), "error");
  EXPECT_EQ(frame->at("code"), "already_done");

  EXPECT_TRUE(client.ping());  // Neither error cost the connection.
  server.stop();
}

// ---- Sandbox crash containment --------------------------------------------

TEST(ServiceTest, WorkerCrashBecomesAStructuredRowAndTheDaemonSurvives) {
  ScenarioSpec crash = quick_spec("crash", 77);
  crash.debug_crash = "segv";
  const std::vector<ScenarioSpec> specs = {quick_spec("pre", 71), crash,
                                           quick_spec("post", 72)};

  ScenarioServer server(base_config());
  ASSERT_TRUE(server.start());
  ScenarioClient client(client_for(server, "ivan"));
  ASSERT_TRUE(client.connect());
  const auto submission = client.submit_specs("crashy", specs);
  ASSERT_TRUE(submission.accepted)
      << submission.error_code << ": " << submission.error_detail;

  // The job completes: the crashing scenario is a structured error row,
  // not a dead daemon or a lost job.
  const auto outcome = client.wait(submission.job_id);
  ASSERT_TRUE(outcome.done)
      << outcome.error_code << ": " << outcome.error_detail;
  EXPECT_EQ(outcome.executed, specs.size());
  EXPECT_NE(outcome.jsonl().find("\"error_kind\": \"crash\""),
            std::string::npos);
  EXPECT_NE(outcome.jsonl().find("sandbox worker killed by SIGSEGV"),
            std::string::npos);

  const auto stats = server.stats();
  EXPECT_EQ(stats.sandbox_crashes, 1u);
  EXPECT_GE(stats.workers_respawned, 1u);

  // The daemon still serves: a follow-up job runs clean on the respawned
  // worker.
  const auto after = client.submit_specs("after", {quick_spec("clean", 73)});
  ASSERT_TRUE(after.accepted);
  EXPECT_TRUE(client.wait(after.job_id).done);
  client.bye();
  server.stop();
}

TEST(ServiceTest, CancelKillsTheInFlightSandboxWorker) {
  // One deliberately slow scenario (~tens of seconds cooperatively): a
  // cancel must kill the sandbox worker's process group and tear the job
  // down in far less than that, with no row executed or journaled.
  const std::vector<ScenarioSpec> specs = {quick_spec("slow", 81, 2'000'000)};
  ServiceConfig config = base_config();
  config.workers = 1;
  config.record_dispatch_log = true;
  ScenarioServer server(config);
  ASSERT_TRUE(server.start());
  ScenarioClient client(client_for(server, "kate"));
  ASSERT_TRUE(client.connect());
  const auto submission = client.submit_specs("slow", specs);
  ASSERT_TRUE(submission.accepted);

  // Wait until the scenario is claimed by the worker (dispatch-logged),
  // then cancel while it is genuinely in flight.
  ASSERT_TRUE(eventually([&] { return !server.dispatch_log().empty(); }));
  ASSERT_TRUE(client.cancel("slow"));
  const auto outcome = client.wait(submission.job_id);
  EXPECT_TRUE(outcome.cancelled)
      << outcome.error_code << ": " << outcome.error_detail;
  EXPECT_FALSE(outcome.done);
  // Killed, not cooperatively finished: nothing completed.
  EXPECT_EQ(server.stats().scenarios_executed, 0u);
  EXPECT_EQ(server.stats().jobs_cancelled, 1u);

  // The worker respawns for the next job.
  const auto after = client.submit_specs("after", {quick_spec("next", 82)});
  ASSERT_TRUE(after.accepted);
  EXPECT_TRUE(client.wait(after.job_id).done);
  client.bye();
  server.stop();
}

// ---- Replay bundles -------------------------------------------------------

TEST(ServiceTest, ReplayBundleJobsReportReproduction) {
  ScenarioServer server(base_config());
  ASSERT_TRUE(server.start());
  ScenarioClient client(client_for(server, "heidi"));
  ASSERT_TRUE(client.connect());

  ddl::scenario::ReplayBundle bundle;
  bundle.spec = quick_spec("replayed", 97);
  bundle.expected_failure_reason = "";  // Expecting a pass...
  auto submission = client.submit_replay("repro-pass", bundle);
  ASSERT_TRUE(submission.accepted)
      << submission.error_code << ": " << submission.error_detail;
  EXPECT_EQ(submission.scenarios, 1u);
  auto outcome = client.wait(submission.job_id);
  ASSERT_TRUE(outcome.done);
  EXPECT_TRUE(outcome.replay);
  EXPECT_TRUE(outcome.reproduced);  // ...and the pass reproduced.

  // The same spec expecting a failure it does not produce: the job runs
  // to done, but the bundle's verdict did not reproduce.
  bundle.expected_failure_reason = "no_lock";
  submission = client.submit_replay("repro-miss", bundle);
  ASSERT_TRUE(submission.accepted);
  outcome = client.wait(submission.job_id);
  ASSERT_TRUE(outcome.done);
  EXPECT_TRUE(outcome.replay);
  EXPECT_FALSE(outcome.reproduced);
  EXPECT_EQ(server.stats().replay_jobs, 2u);
  server.stop();
}

// ---- Liveness timeouts and adversarial budgets ----------------------------

TEST(ServiceTest, DeadPeerTimeoutReapsSilentSessions) {
  ServiceConfig config = base_config();
  config.dead_peer_timeout_ms = 100;
  ScenarioServer server(config);
  ASSERT_TRUE(server.start());

  const int fd = raw_connect(server.tcp_port());
  ASSERT_GE(fd, 0);
  // Never says hello, never pings: reaped with a structured goodbye.
  ASSERT_TRUE(eventually(
      [&] { return server.stats().sessions_timed_out >= 1; }));
  const std::string bytes = drain_to_eof(fd);
  EXPECT_NE(bytes.find("dead_peer"), std::string::npos);
  ::close(fd);
  server.stop();
}

TEST(ServiceTest, ClientHeartbeatsKeepALongWaitAlive) {
  ServiceConfig config = base_config();
  config.workers = 1;
  config.dead_peer_timeout_ms = 300;
  ScenarioServer server(config);
  ASSERT_TRUE(server.start());

  ClientConfig client_config = client_for(server, "ivan");
  client_config.heartbeat_ms = 50;
  ScenarioClient client(client_config);
  ASSERT_TRUE(client.connect());
  // ~800 ms of worker time on the one worker: far past the dead-peer
  // window, so only the client's pings keep the blocked wait() alive.
  const std::vector<ScenarioSpec> specs = {quick_spec("hb1", 55, 20'000),
                                           quick_spec("hb2", 56, 20'000)};
  const auto submission = client.submit_specs("patient", specs);
  ASSERT_TRUE(submission.accepted);
  const auto outcome = client.wait(submission.job_id);
  ASSERT_TRUE(outcome.done)
      << outcome.error_code << ": " << outcome.error_detail;
  EXPECT_EQ(server.stats().sessions_timed_out, 0u);
  server.stop();
}

TEST(ServiceTest, PartialFrameTimeoutDefeatsSlowloris) {
  ServiceConfig config = base_config();
  config.partial_frame_timeout_ms = 100;
  ScenarioServer server(config);
  ASSERT_TRUE(server.start());

  const int fd = raw_connect(server.tcp_port());
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(raw_hello(fd, "slow"));
  // Three bytes of a header, then silence: the classic slowloris hold.
  const char partial[3] = {0, 0, 0};
  ASSERT_TRUE(ddl::service::net::send_all(fd, partial, sizeof(partial)));
  ASSERT_TRUE(eventually(
      [&] { return server.stats().sessions_timed_out >= 1; }));
  const std::string bytes = drain_to_eof(fd);
  EXPECT_NE(bytes.find("partial_frame_timeout"), std::string::npos);
  ::close(fd);
  server.stop();
}

TEST(ServiceTest, AbortedMidSubmitCreatesNoJob) {
  ServiceConfig config = base_config();
  config.state_dir = fresh_dir("abort");
  ScenarioServer server(config);
  ASSERT_TRUE(server.start());

  const int fd = raw_connect(server.tcp_port());
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(raw_hello(fd, "killed"));
  // Half a submit frame, then an abortive close (RST) -- the wire-level
  // shape of a client killed -9 mid-write.
  ddl::analysis::JsonObject submit = ddl::service::make_frame("submit");
  submit.set("job", "never-lands");
  submit.set("spec_count", std::uint64_t{1});
  submit.set("spec.0.name", "svc/cut/short");
  const std::string wire =
      ddl::service::encode_frame(submit.to_json_line());
  ASSERT_TRUE(
      ddl::service::net::send_all(fd, wire.data(), wire.size() / 2));
  struct linger hard_close = {1, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &hard_close, sizeof(hard_close));
  ::close(fd);

  // The half frame dies with the session: no job, no crash, full service
  // for the next client.
  ASSERT_TRUE(
      eventually([&] { return server.stats().sessions_closed >= 1; }));
  EXPECT_EQ(server.stats().jobs_accepted, 0u);
  ScenarioClient client(client_for(server, "after"));
  ASSERT_TRUE(client.connect());
  const auto submission =
      client.submit_specs("fine", {quick_spec("ok", 58)});
  ASSERT_TRUE(submission.accepted);
  EXPECT_TRUE(client.wait(submission.job_id).done);
  EXPECT_EQ(server.stats().jobs_accepted, 1u);
  server.stop();
}

TEST(ServiceTest, FrameFloodIsServedUnderPerTickBudgets) {
  ServiceConfig config = base_config();
  config.max_frames_per_tick = 2;  // Tiny budget: force deferred drains.
  ScenarioServer server(config);
  ASSERT_TRUE(server.start());
  ScenarioClient client(client_for(server, "flood"));
  ASSERT_TRUE(client.connect());

  // Blast a burst far over the per-tick budget; fairness slicing may
  // defer frames across ticks but must never drop or reorder them.
  constexpr int kPings = 32;
  for (int i = 0; i < kPings; ++i) {
    ddl::analysis::JsonObject ping = ddl::service::make_frame("ping");
    ping.set("nonce", "n" + std::to_string(i));
    ASSERT_TRUE(client.send_payload(ping.to_json_line()));
  }
  int pongs = 0;
  while (pongs < kPings) {
    const auto frame = client.next_frame();
    ASSERT_TRUE(frame.has_value()) << "after " << pongs << " pongs";
    if (frame->at("frame") == "pong") {
      pongs++;
    }
  }
  EXPECT_EQ(pongs, kPings);
  server.stop();
}

// ---- Chaos storms ---------------------------------------------------------

// The acceptance contract of the whole harness: seeded storms through the
// chaos proxy -- resets, truncation, fuzzing, trickle, stalls -- and the
// resilient client still converges to a campaign JSONL byte-identical to
// a direct one-shot runner invocation.  (CI runs 20+ seeds against the
// real daemon through ddl_chaos_proxy; this in-process version keeps a
// handful in every ctest run.)
TEST(ChaosStormTest, SeededStormsConvergeByteIdenticalToTheRunner) {
  const std::vector<ScenarioSpec> specs = {
      quick_spec("storm-a", 91), supervised_spec(), quick_spec("storm-b", 92)};
  const auto golden_results = ScenarioRunner(2).run(specs);
  const std::string golden = ScenarioRunner::jsonl(golden_results);

  std::size_t faults_total = 0;
  for (const std::uint64_t seed : {1ull, 2ull, 3ull, 4ull, 5ull}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    ServiceConfig config = base_config();
    config.state_dir = fresh_dir("storm" + std::to_string(seed));
    config.partial_frame_timeout_ms = 1'000;  // Bound fuzz-extended reads.
    ScenarioServer server(config);
    ASSERT_TRUE(server.start());

    ChaosProxyConfig proxy_config;
    proxy_config.upstream_port = server.tcp_port();
    proxy_config.seed = seed;
    // Hot enough that most storms meet several faults, cool enough that
    // an attempt still has even odds: a full submit + stream round trip
    // crosses ~15 chunk-sized fault decision points, so the per-chunk
    // fault probability compounds fast.
    proxy_config.p_reset_permille = 10;
    proxy_config.p_truncate_permille = 10;
    proxy_config.p_fuzz_permille = 15;
    proxy_config.p_duplicate_permille = 10;
    proxy_config.p_trickle_permille = 5;
    proxy_config.p_stall_permille = 10;
    proxy_config.stall_ms = 40;
    proxy_config.chunk_bytes = 1024;  // More fault decision points.
    ChaosProxy proxy(proxy_config);
    std::string error;
    ASSERT_TRUE(proxy.start(&error)) << error;

    ResilientClientConfig resilient;
    resilient.base.tcp_port = proxy.listen_port();
    resilient.base.name = "stormrider";
    resilient.base.recv_timeout_ms = 2'000;  // Storms wedge; budgets free.
    resilient.base.heartbeat_ms = 200;
    resilient.max_attempts = 64;
    resilient.initial_backoff_ms = 5;
    resilient.max_backoff_ms = 50;
    ResilientScenarioClient client(resilient);

    const auto outcome = client.run_specs("storm-job", specs);
    ASSERT_TRUE(outcome.done)
        << outcome.error_code << ": " << outcome.error_detail
        << " (reconnects=" << client.reconnects() << ")";
    EXPECT_EQ(outcome.jsonl(), golden);
    EXPECT_EQ(outcome.health_jsonl(),
              ScenarioRunner::health_jsonl(golden_results));

    faults_total += proxy.stats().faults();
    proxy.stop();
    server.stop();
  }
  // Five seeded storms at these rates inject faults with near certainty;
  // zero would mean the proxy stopped attacking, not that we got lucky.
  EXPECT_GT(faults_total, 0u);
}

TEST(ChaosStormTest, CleanProxyIsAnInvisiblePassthrough) {
  const std::vector<ScenarioSpec> specs = {quick_spec("clean", 96)};
  ScenarioServer server(base_config());
  ASSERT_TRUE(server.start());

  ChaosProxyConfig proxy_config;
  proxy_config.upstream_port = server.tcp_port();
  proxy_config.p_reset_permille = 0;
  proxy_config.p_truncate_permille = 0;
  proxy_config.p_fuzz_permille = 0;
  proxy_config.p_duplicate_permille = 0;
  proxy_config.p_trickle_permille = 0;
  proxy_config.p_stall_permille = 0;
  proxy_config.p_split_permille = 0;
  ChaosProxy proxy(proxy_config);
  ASSERT_TRUE(proxy.start());

  ResilientClientConfig resilient;
  resilient.base.tcp_port = proxy.listen_port();
  resilient.base.name = "calm";
  resilient.base.recv_timeout_ms = 30'000;
  ResilientScenarioClient client(resilient);
  const auto outcome = client.run_specs("calm-job", specs);
  ASSERT_TRUE(outcome.done)
      << outcome.error_code << ": " << outcome.error_detail;
  EXPECT_EQ(outcome.jsonl(),
            ScenarioRunner::jsonl(ScenarioRunner(1).run(specs)));
  EXPECT_EQ(client.reconnects(), 0u);
  EXPECT_EQ(proxy.stats().faults(), 0u);
  EXPECT_GT(proxy.stats().forwarded_bytes, 0u);
  proxy.stop();
  server.stop();
}

}  // namespace
