// Tests for the campaign service: frame codec robustness, the submit /
// stream / job_done round trip (byte-identical to the one-shot runner),
// quota backpressure as a frame (never a disconnect), fair round-robin
// scheduling across clients, mid-stream disconnect survival, journal-backed
// restart resume, and structured error frames for malformed submissions.
//
// Every test binds an ephemeral loopback port (or a temp-dir unix socket),
// so the suite is parallel-safe and needs no fixed resources.
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "ddl/scenario/runner.h"
#include "ddl/scenario/spec.h"
#include "ddl/service/client.h"
#include "ddl/service/protocol.h"
#include "ddl/service/server.h"

namespace {

namespace fs = std::filesystem;

using ddl::scenario::LoadSpec;
using ddl::scenario::ScenarioRunner;
using ddl::scenario::ScenarioSpec;
using ddl::service::ClientConfig;
using ddl::service::FrameReader;
using ddl::service::ScenarioClient;
using ddl::service::ScenarioServer;
using ddl::service::ServiceConfig;

/// A fast proposed-line scenario (~15 ms): long enough to be a real
/// closed-loop run, short enough that suites of them stay snappy.
/// `periods` also doubles as the pacing knob -- the scheduling tests
/// stretch it to hold workers busy deterministically.
ScenarioSpec quick_spec(const std::string& variant, std::uint64_t seed,
                        std::uint64_t periods = 900) {
  ScenarioSpec spec;
  spec.name = "svc/proposed/typical/" + variant;
  spec.family = "svc";
  spec.seed = seed;
  spec.load = LoadSpec::constant(0.4);
  spec.periods = periods;
  spec.measure_from = (periods * 2) / 3;
  spec.allow_limit_cycling = true;
  spec.tolerance_v = 0.05;
  return spec;
}

/// A supervised variant so the stream carries health frames too.
ScenarioSpec supervised_spec() {
  ScenarioSpec spec = quick_spec("supervised", 7);
  spec.tolerance_v = 0.06;
  spec.load = LoadSpec::constant(0.5);
  spec.supervision.enabled = true;
  spec.faults = {ddl::scenario::FaultSpec::delay_cell(31, 10.0, 400)};
  return spec;
}

std::string fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("service_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

ServiceConfig base_config() {
  ServiceConfig config;
  config.tcp_port = 0;  // Ephemeral.
  config.workers = 2;
  config.heartbeat_ms = 60'000;  // Out of the way unless a test wants it.
  return config;
}

ClientConfig client_for(const ScenarioServer& server, std::string name) {
  ClientConfig config;
  config.tcp_port = server.tcp_port();
  config.name = std::move(name);
  config.recv_timeout_ms = 30'000;  // A hung test fails, never wedges CI.
  return config;
}

// ---- Frame codec ----------------------------------------------------------

TEST(FrameCodecTest, RoundTripsAcrossArbitraryFragmentation) {
  const std::vector<std::string> payloads = {
      R"({"frame":"hello","protocol_version":1})",
      "",  // Zero-length payload is a legal frame.
      R"({"frame":"result","row":"{\"name\":\"a/b\",\"pass\":true}"})",
  };
  std::string wire;
  for (const std::string& payload : payloads) {
    wire += ddl::service::encode_frame(payload);
  }
  // Feed one byte at a time: every length prefix and payload is split.
  FrameReader reader;
  std::vector<std::string> decoded;
  for (const char byte : wire) {
    reader.feed(&byte, 1);
    while (auto payload = reader.next()) {
      decoded.push_back(*payload);
    }
  }
  EXPECT_EQ(decoded, payloads);
  EXPECT_FALSE(reader.failed());
  EXPECT_EQ(reader.buffered(), 0u);
}

TEST(FrameCodecTest, OversizedLengthPrefixPoisonsTheReader) {
  FrameReader reader;
  const char bogus[4] = {0x7f, 0x00, 0x00, 0x00};  // ~2 GiB "payload".
  reader.feed(bogus, sizeof(bogus));
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_TRUE(reader.failed());
  EXPECT_NE(reader.error().find("exceeds"), std::string::npos);
  // Poisoned for good: further bytes never resynchronize.
  reader.feed(bogus, sizeof(bogus));
  EXPECT_FALSE(reader.next().has_value());
}

TEST(FrameCodecTest, RowStringsSurviveTheEscapeRoundTrip) {
  // The acceptance-critical property: a JSONL row carried as a frame's
  // string field comes back byte-identical.
  const std::string row =
      R"({"schema_version":2,"name":"a/b","verdict":"pass","vout":0.9375})";
  ddl::analysis::JsonObject frame = ddl::service::make_frame("result");
  frame.set("row", row);
  const auto fields =
      ddl::service::parse_frame_payload(frame.to_json_line());
  ASSERT_TRUE(fields.has_value());
  EXPECT_EQ(fields->at("row"), row);
}

// ---- Submit / stream round trip -------------------------------------------

TEST(ServiceTest, StreamedRowsAreByteIdenticalToTheRunner) {
  const std::vector<ScenarioSpec> specs = {
      quick_spec("a", 11), supervised_spec(), quick_spec("b", 12)};

  ServiceConfig config = base_config();
  config.state_dir = fresh_dir("roundtrip");
  ScenarioServer server(config);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  ScenarioClient client(client_for(server, "alice"));
  ASSERT_TRUE(client.connect(&error)) << error;
  const auto submission = client.submit_specs("nightly", specs);
  ASSERT_TRUE(submission.accepted)
      << submission.error_code << ": " << submission.error_detail;
  EXPECT_FALSE(submission.resumed);
  EXPECT_EQ(submission.scenarios, specs.size());

  const auto outcome = client.wait(submission.job_id);
  ASSERT_TRUE(outcome.done)
      << outcome.error_code << ": " << outcome.error_detail;
  EXPECT_EQ(outcome.executed, specs.size());
  EXPECT_EQ(outcome.resumed, 0u);

  ScenarioRunner runner(2);
  const auto results = runner.run(specs);
  EXPECT_EQ(outcome.jsonl(), ScenarioRunner::jsonl(results));
  EXPECT_EQ(outcome.health_jsonl(), ScenarioRunner::health_jsonl(results));
  EXPECT_FALSE(outcome.health_jsonl().empty());

  client.bye();
  server.stop();
}

TEST(ServiceTest, UnixDomainSocketSpeaksTheSameProtocol) {
  const std::string dir = fresh_dir("unix");
  ServiceConfig config = base_config();
  config.enable_tcp = false;
  config.unix_path = dir + "/ddl.sock";
  ScenarioServer server(config);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;
  EXPECT_EQ(server.tcp_port(), 0);

  ClientConfig client_config;
  client_config.unix_path = config.unix_path;
  client_config.name = "unix-client";
  client_config.recv_timeout_ms = 30'000;
  ScenarioClient client(client_config);
  ASSERT_TRUE(client.connect(&error)) << error;
  EXPECT_TRUE(client.ping());

  const std::vector<ScenarioSpec> specs = {quick_spec("u", 21)};
  const auto submission = client.submit_specs("unix-job", specs);
  ASSERT_TRUE(submission.accepted);
  const auto outcome = client.wait(submission.job_id);
  ASSERT_TRUE(outcome.done);
  EXPECT_EQ(outcome.jsonl(),
            ScenarioRunner::jsonl(ScenarioRunner(1).run(specs)));
  server.stop();
  EXPECT_FALSE(fs::exists(config.unix_path));  // Unlinked on shutdown.
}

TEST(ServiceTest, ResubmittingTheSameJobReplaysInsteadOfRerunning) {
  const std::vector<ScenarioSpec> specs = {quick_spec("r1", 31),
                                           quick_spec("r2", 32)};
  ServiceConfig config = base_config();
  config.state_dir = fresh_dir("replay");
  ScenarioServer server(config);
  ASSERT_TRUE(server.start());

  ScenarioClient first(client_for(server, "carol"));
  ASSERT_TRUE(first.connect());
  const auto sub1 = first.submit_specs("batch", specs);
  ASSERT_TRUE(sub1.accepted);
  const auto out1 = first.wait(sub1.job_id);
  ASSERT_TRUE(out1.done);
  first.bye();

  ScenarioClient second(client_for(server, "carol"));
  ASSERT_TRUE(second.connect());
  const auto sub2 = second.submit_specs("batch", specs);
  ASSERT_TRUE(sub2.accepted);
  EXPECT_TRUE(sub2.resumed);
  EXPECT_EQ(sub2.job_id, sub1.job_id);
  const auto out2 = second.wait(sub2.job_id);
  ASSERT_TRUE(out2.done);
  EXPECT_EQ(out2.jsonl(), out1.jsonl());

  // Nothing ran twice: the second submit was pure replay.
  EXPECT_EQ(server.stats().scenarios_executed, specs.size());
  server.stop();
}

// ---- Quotas and backpressure ----------------------------------------------

TEST(ServiceTest, QuotaExceededIsABackpressureFrameNotADisconnect) {
  ServiceConfig config = base_config();
  config.workers = 1;
  config.max_pending_jobs_per_client = 1;
  ScenarioServer server(config);
  ASSERT_TRUE(server.start());

  ScenarioClient client(client_for(server, "dave"));
  ASSERT_TRUE(client.connect());

  // Job A holds the quota: one long scenario on the only worker.
  const std::vector<ScenarioSpec> slow = {quick_spec("slow", 41, 20'000)};
  const auto sub_a = client.submit_specs("job-a", slow);
  ASSERT_TRUE(sub_a.accepted);

  // Job B trips the quota: explicit, retryable backpressure.
  const std::vector<ScenarioSpec> fast = {quick_spec("fast", 42)};
  const auto sub_b = client.submit_specs("job-b", fast);
  EXPECT_FALSE(sub_b.accepted);
  EXPECT_TRUE(sub_b.backpressure);
  EXPECT_GT(sub_b.retry_ms, 0u);
  EXPECT_EQ(server.stats().backpressure_frames, 1u);

  // The session survives the rejection...
  EXPECT_TRUE(client.ping());
  ASSERT_TRUE(client.wait(sub_a.job_id).done);

  // ...and the retry goes through once the quota frees up.
  const auto retry = client.submit_specs("job-b", fast);
  ASSERT_TRUE(retry.accepted);
  EXPECT_TRUE(client.wait(retry.job_id).done);
  server.stop();
}

TEST(ServiceTest, SchedulingIsFairRoundRobinAcrossClients) {
  ServiceConfig config = base_config();
  config.workers = 1;
  config.max_inflight_per_client = 1;
  config.record_dispatch_log = true;
  ScenarioServer server(config);
  ASSERT_TRUE(server.start());

  // A plug occupies the single worker (~400 ms) while the three measured
  // clients queue their jobs, so the dispatch order past the plug is a
  // pure function of the round-robin scheduler -- no submit-timing races.
  ScenarioClient plug(client_for(server, "plug"));
  ASSERT_TRUE(plug.connect());
  const auto plug_sub =
      plug.submit_specs("plug", {quick_spec("plug", 51, 20'000)});
  ASSERT_TRUE(plug_sub.accepted);

  std::vector<std::unique_ptr<ScenarioClient>> clients;
  std::vector<ScenarioClient::Submission> subs;
  for (const std::string name : {"c1", "c2", "c3"}) {
    auto client = std::make_unique<ScenarioClient>(client_for(server, name));
    ASSERT_TRUE(client->connect());
    std::vector<ScenarioSpec> specs;
    for (int i = 0; i < 3; ++i) {
      specs.push_back(
          quick_spec(name + "-" + std::to_string(i), 60 + i));
    }
    subs.push_back(client->submit_specs("fair", specs));
    ASSERT_TRUE(subs.back().accepted);
    clients.push_back(std::move(client));
  }
  ASSERT_TRUE(plug.wait(plug_sub.job_id).done);
  for (std::size_t i = 0; i < clients.size(); ++i) {
    ASSERT_TRUE(clients[i]->wait(subs[i].job_id).done);
  }

  const auto log = server.dispatch_log();
  ASSERT_EQ(log.size(), 10u);  // 1 plug + 3 clients x 3 scenarios.
  EXPECT_EQ(log[0], "plug");
  // Past the plug, every rotation serves all three clients exactly once.
  for (std::size_t i = 1; i + 2 < log.size(); i += 3) {
    const std::set<std::string> window(log.begin() + i, log.begin() + i + 3);
    EXPECT_EQ(window, (std::set<std::string>{"c1", "c2", "c3"}))
        << "rotation starting at dispatch " << i;
  }
  server.stop();
}

// ---- Disconnects and restarts ---------------------------------------------

TEST(ServiceTest, MidStreamDisconnectLeavesTheJobRunningAsAnOrphan) {
  const std::vector<ScenarioSpec> specs = {
      quick_spec("d1", 71, 4'000), quick_spec("d2", 72, 4'000),
      quick_spec("d3", 73, 4'000)};
  ServiceConfig config = base_config();
  config.state_dir = fresh_dir("disconnect");
  ScenarioServer server(config);
  ASSERT_TRUE(server.start());

  {
    ScenarioClient client(client_for(server, "erin"));
    ASSERT_TRUE(client.connect());
    const auto submission = client.submit_specs("orphaned", specs);
    ASSERT_TRUE(submission.accepted);
    client.close();  // Vanish mid-stream, no bye.
  }

  // The job keeps executing with no session attached and completes.
  ASSERT_TRUE(server.wait_all_jobs_done(60'000));
  EXPECT_EQ(server.stats().scenarios_executed, specs.size());

  // A reconnecting client replays the full stream byte-exactly.
  ScenarioClient client(client_for(server, "erin"));
  ASSERT_TRUE(client.connect());
  const auto submission = client.submit_specs("orphaned", specs);
  ASSERT_TRUE(submission.accepted);
  EXPECT_TRUE(submission.resumed);
  const auto outcome = client.wait(submission.job_id);
  ASSERT_TRUE(outcome.done);
  EXPECT_EQ(outcome.jsonl(),
            ScenarioRunner::jsonl(ScenarioRunner(1).run(specs)));
  EXPECT_EQ(server.stats().scenarios_executed, specs.size());
  server.stop();
}

TEST(ServiceTest, RestartResumesTheJournalWithoutRerunningAnything) {
  const std::string state_dir = fresh_dir("restart");
  std::vector<ScenarioSpec> specs;
  for (int i = 0; i < 4; ++i) {
    specs.push_back(quick_spec("res-" + std::to_string(i), 80 + i, 6'000));
  }

  std::size_t executed_before = 0;
  {
    ServiceConfig config = base_config();
    config.state_dir = state_dir;
    config.workers = 1;
    ScenarioServer server(config);
    ASSERT_TRUE(server.start());
    ScenarioClient client(client_for(server, "frank"));
    ASSERT_TRUE(client.connect());
    ASSERT_TRUE(client.submit_specs("long-haul", specs).accepted);
    // Let at least one scenario commit, then stop gracefully mid-job:
    // in-flight work finishes and journals, the rest stays pending.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (server.stats().scenarios_executed < 1 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    server.stop();
    executed_before = server.stats().scenarios_executed;
    ASSERT_GE(executed_before, 1u);
    ASSERT_LT(executed_before, specs.size());  // Stopped mid-job.
  }

  ServiceConfig config = base_config();
  config.state_dir = state_dir;
  ScenarioServer server(config);
  ASSERT_TRUE(server.start());
  EXPECT_EQ(server.stats().jobs_recovered, 1u);
  EXPECT_EQ(server.stats().scenarios_resumed, executed_before);
  // The orphan finishes without any client attached...
  ASSERT_TRUE(server.wait_all_jobs_done(60'000));
  // ...running only what the first server never committed.
  EXPECT_EQ(server.stats().scenarios_executed,
            specs.size() - executed_before);

  // And the reassembled stream is byte-identical to an uninterrupted run.
  ScenarioClient client(client_for(server, "frank"));
  ASSERT_TRUE(client.connect());
  const auto submission = client.submit_specs("long-haul", specs);
  ASSERT_TRUE(submission.accepted);
  EXPECT_TRUE(submission.resumed);
  const auto outcome = client.wait(submission.job_id);
  ASSERT_TRUE(outcome.done);
  EXPECT_EQ(outcome.executed + outcome.resumed, specs.size());
  EXPECT_EQ(outcome.jsonl(),
            ScenarioRunner::jsonl(ScenarioRunner(1).run(specs)));
  server.stop();
}

// ---- Error paths ----------------------------------------------------------

TEST(ServiceTest, MalformedSubmissionsGetStructuredErrorFrames) {
  ScenarioServer server(base_config());
  ASSERT_TRUE(server.start());
  ScenarioClient client(client_for(server, "mallory"));
  ASSERT_TRUE(client.connect());

  // Wrong-typed field inside a flattened spec.
  ddl::analysis::JsonObject bad_spec = ddl::service::make_frame("submit");
  bad_spec.set("job", "bad");
  bad_spec.set("spec_count", std::uint64_t{1});
  bad_spec.set("spec.0.name", "svc/x");
  bad_spec.set("spec.0.periods", "four-thousand");
  auto submission = client.submit_frame(bad_spec, "bad");
  EXPECT_FALSE(submission.accepted);
  EXPECT_EQ(submission.error_code, "invalid_spec");
  EXPECT_NE(submission.error_detail.find("spec.0.periods"),
            std::string::npos);

  // Unknown suite.
  submission = client.submit_suite("bad2", "no-such-suite");
  EXPECT_EQ(submission.error_code, "unknown_suite");

  // submit with neither suite nor specs.
  ddl::analysis::JsonObject empty = ddl::service::make_frame("submit");
  empty.set("job", "bad3");
  submission = client.submit_frame(empty, "bad3");
  EXPECT_EQ(submission.error_code, "invalid_submit");

  // A payload that is not JSON at all.
  ASSERT_TRUE(client.send_payload("certainly not json"));
  auto frame = client.next_frame();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->at("frame"), "error");
  EXPECT_EQ(frame->at("code"), "bad_frame");

  // An unknown frame type.
  ASSERT_TRUE(client.send_payload(
      ddl::service::make_frame("launch_missiles").to_json_line()));
  frame = client.next_frame();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->at("code"), "unknown_frame");

  // None of it cost the connection.
  EXPECT_TRUE(client.ping());
  EXPECT_GE(server.stats().error_frames, 4u);
  server.stop();
}

TEST(ServiceTest, ProtocolVersionMismatchIsRejectedExplicitly) {
  ScenarioServer server(base_config());
  ASSERT_TRUE(server.start());

  ClientConfig config = client_for(server, "old-client");
  ScenarioClient client(config);
  // Drive the handshake by hand with a wrong version.
  std::string error;
  ASSERT_TRUE(client.connect(&error)) << error;  // Good handshake first.
  ddl::analysis::JsonObject stale = ddl::service::make_frame("hello");
  stale.set("protocol_version", 999);
  stale.set("client", "old-client");
  ASSERT_TRUE(client.send_payload(stale.to_json_line()));
  const auto reply = client.next_frame();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->at("frame"), "error");
  EXPECT_EQ(reply->at("code"), "protocol_mismatch");
  server.stop();
}

TEST(ServiceTest, HeartbeatsFlowOnAnIdleConnection) {
  ServiceConfig config = base_config();
  config.heartbeat_ms = 50;
  ScenarioServer server(config);
  ASSERT_TRUE(server.start());
  ScenarioClient client(client_for(server, "idle"));
  ASSERT_TRUE(client.connect());
  const auto frame = client.next_frame();  // Blocks until the beat.
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->at("frame"), "heartbeat");
  server.stop();
}

}  // namespace
