// Unit tests for the technology / PVT / mismatch substrate.
#include <gtest/gtest.h>

#include <cmath>

#include "ddl/cells/cell_kind.h"
#include "ddl/cells/mismatch.h"
#include "ddl/cells/operating_point.h"
#include "ddl/cells/technology.h"

namespace ddl::cells {
namespace {

TEST(CellKind, AllKindsHaveNames) {
  for (int i = 0; i < kCellKindCount; ++i) {
    EXPECT_NE(to_string(static_cast<CellKind>(i)), "UNKNOWN");
  }
}

TEST(OperatingPoint, ProcessFactorsMatchThesisSpread) {
  // Section 3.1: typical d -> d/2 fast, 2d slow; 4x total spread.
  EXPECT_DOUBLE_EQ(process_delay_factor(ProcessCorner::kFast), 0.5);
  EXPECT_DOUBLE_EQ(process_delay_factor(ProcessCorner::kTypical), 1.0);
  EXPECT_DOUBLE_EQ(process_delay_factor(ProcessCorner::kSlow), 2.0);
}

TEST(OperatingPoint, VoltageFactorIsOneAtNominal) {
  EXPECT_NEAR(voltage_delay_factor(OperatingPoint::kNominalSupplyV), 1.0,
              1e-12);
}

TEST(OperatingPoint, LowerSupplyIsSlower) {
  EXPECT_GT(voltage_delay_factor(0.8), 1.0);
  EXPECT_LT(voltage_delay_factor(1.2), 1.0);
}

TEST(OperatingPoint, VoltageFactorMonotonicallyDecreasesWithSupply) {
  double previous = voltage_delay_factor(0.5);
  for (double v = 0.55; v <= 1.3; v += 0.05) {
    const double factor = voltage_delay_factor(v);
    EXPECT_LT(factor, previous) << "at supply " << v;
    previous = factor;
  }
}

TEST(OperatingPoint, VoltageFactorClampsNearThreshold) {
  // Below the characterized range the model must stay finite.
  EXPECT_TRUE(std::isfinite(voltage_delay_factor(0.0)));
  EXPECT_TRUE(std::isfinite(voltage_delay_factor(0.3)));
}

TEST(OperatingPoint, TemperatureFactorIsOneAtNominal) {
  EXPECT_DOUBLE_EQ(temperature_delay_factor(25.0), 1.0);
}

TEST(OperatingPoint, HotterIsSlower) {
  EXPECT_GT(temperature_delay_factor(110.0), 1.0);
  EXPECT_LT(temperature_delay_factor(-40.0), 1.0);
}

TEST(OperatingPoint, DeratingComposesAllThreeAxes) {
  OperatingPoint op{ProcessCorner::kSlow, 0.9, 110.0};
  const double expected = 2.0 * voltage_delay_factor(0.9) *
                          temperature_delay_factor(110.0);
  EXPECT_DOUBLE_EQ(delay_derating(op), expected);
}

TEST(Technology, BufferDelayMatchesThesisDesignExample) {
  // Section 4.2: buffer = 20 ps fast, 80 ps slow.
  const Technology tech = Technology::i32nm_class();
  EXPECT_DOUBLE_EQ(
      tech.delay_ps(CellKind::kBuffer, OperatingPoint::fast_process_only()),
      20.0);
  EXPECT_DOUBLE_EQ(
      tech.delay_ps(CellKind::kBuffer, OperatingPoint::slow_process_only()),
      80.0);
  EXPECT_DOUBLE_EQ(tech.typical_delay_ps(CellKind::kBuffer), 40.0);
}

TEST(Technology, CornerSpreadIsFour) {
  EXPECT_DOUBLE_EQ(Technology::i32nm_class().corner_spread(), 4.0);
}

TEST(Technology, AllCellsHavePositiveAreaAndDelayBudget) {
  const Technology tech = Technology::i32nm_class();
  for (int i = 0; i < kCellKindCount; ++i) {
    const auto kind = static_cast<CellKind>(i);
    EXPECT_GT(tech.area_um2(kind), 0.0) << to_string(kind);
    EXPECT_GE(tech.typical_delay_ps(kind), 0.0) << to_string(kind);
  }
}

TEST(Technology, ScaledTechnologyScalesDelaysAndAreas) {
  const Technology tech = Technology::i32nm_class();
  const Technology scaled = tech.scaled(2.0, 0.5);
  EXPECT_DOUBLE_EQ(scaled.typical_delay_ps(CellKind::kBuffer), 80.0);
  EXPECT_DOUBLE_EQ(scaled.area_um2(CellKind::kBuffer),
                   tech.area_um2(CellKind::kBuffer) * 0.5);
  EXPECT_DOUBLE_EQ(scaled.sequential_timing().setup_ps,
                   tech.sequential_timing().setup_ps * 2.0);
}

TEST(Technology, EnergyScalesWithSupplySquared) {
  const Technology tech = Technology::i32nm_class();
  OperatingPoint op = OperatingPoint::typical();
  const double nominal = tech.energy_fj(CellKind::kBuffer, op);
  op.supply_v = 2.0;
  EXPECT_NEAR(tech.energy_fj(CellKind::kBuffer, op), 4.0 * nominal, 1e-9);
}

TEST(Mismatch, SameSeedReproducesSameDie) {
  const Technology tech = Technology::i32nm_class();
  MismatchSampler a(tech, 42);
  MismatchSampler b(tech, 42);
  const auto op = OperatingPoint::typical();
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.sample_delay_ps(CellKind::kBuffer, op),
                     b.sample_delay_ps(CellKind::kBuffer, op));
  }
}

TEST(Mismatch, DifferentSeedsDiffer) {
  const Technology tech = Technology::i32nm_class();
  MismatchSampler a(tech, 1);
  MismatchSampler b(tech, 2);
  const auto op = OperatingPoint::typical();
  int identical = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.sample_delay_ps(CellKind::kBuffer, op) ==
        b.sample_delay_ps(CellKind::kBuffer, op)) {
      ++identical;
    }
  }
  EXPECT_LT(identical, 5);
}

TEST(Mismatch, SampleIsClampedAroundNominal) {
  const Technology tech = Technology::i32nm_class();
  MismatchSampler sampler(tech, 7, /*sigma=*/0.5);  // Violent mismatch.
  const auto op = OperatingPoint::typical();
  const double nominal = tech.delay_ps(CellKind::kBuffer, op);
  for (int i = 0; i < 1000; ++i) {
    const double d = sampler.sample_delay_ps(CellKind::kBuffer, op);
    EXPECT_GE(d, 0.5 * nominal);
    EXPECT_LE(d, 1.5 * nominal);
  }
}

TEST(Mismatch, MeanTracksNominal) {
  const Technology tech = Technology::i32nm_class();
  MismatchSampler sampler(tech, 11);
  const auto op = OperatingPoint::typical();
  double sum = 0.0;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) {
    sum += sampler.sample_delay_ps(CellKind::kBuffer, op);
  }
  EXPECT_NEAR(sum / kSamples, 40.0, 0.05);
}

// Property: a series of k mismatched cells has relative sigma ~ 1/sqrt(k) --
// the averaging effect behind the thesis's "linearity is better for lower
// frequencies" observation (section 4.3).
class MismatchAveraging : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MismatchAveraging, SeriesSigmaShrinksAsSqrtK) {
  const std::size_t k = GetParam();
  const Technology tech = Technology::i32nm_class();
  const auto op = OperatingPoint::typical();
  MismatchSampler sampler(tech, 1234);
  constexpr int kTrials = 4000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < kTrials; ++i) {
    const double d = sampler.sample_series_delay_ps(CellKind::kBuffer, op, k) /
                     static_cast<double>(k);
    sum += d;
    sum_sq += d * d;
  }
  const double mean = sum / kTrials;
  const double sigma = std::sqrt(std::max(0.0, sum_sq / kTrials - mean * mean));
  const double relative = sigma / mean;
  const double expected = tech.mismatch_sigma() / std::sqrt(double(k));
  EXPECT_NEAR(relative, expected, 0.25 * expected) << "k=" << k;
}

INSTANTIATE_TEST_SUITE_P(SeriesLengths, MismatchAveraging,
                         ::testing::Values(1, 2, 4, 8, 16));

}  // namespace
}  // namespace ddl::cells
