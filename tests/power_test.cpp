// Tests for the synthesis power model.
#include <gtest/gtest.h>

#include "ddl/synth/power.h"

namespace ddl::synth {
namespace {

const cells::Technology kTech = cells::Technology::i32nm_class();
const cells::OperatingPoint kTyp = cells::OperatingPoint::typical();

TEST(Power, BlockPowerScalesLinearlyWithClockAndActivity) {
  GateInventory inv;
  inv.add(cells::CellKind::kBuffer, 100);
  const double base = block_power_uw(inv, kTech, kTyp, 100e6, 1.0);
  EXPECT_GT(base, 0.0);
  EXPECT_DOUBLE_EQ(block_power_uw(inv, kTech, kTyp, 200e6, 1.0), 2.0 * base);
  EXPECT_DOUBLE_EQ(block_power_uw(inv, kTech, kTyp, 100e6, 0.5), 0.5 * base);
}

TEST(Power, SupplyScalingIsQuadratic) {
  GateInventory inv;
  inv.add(cells::CellKind::kBuffer, 100);
  cells::OperatingPoint boosted = kTyp;
  boosted.supply_v = 1.2;
  EXPECT_NEAR(block_power_uw(inv, kTech, boosted, 100e6, 1.0),
              1.44 * block_power_uw(inv, kTech, kTyp, 100e6, 1.0), 1e-9);
}

TEST(Power, ProposedReportShapesAreSane) {
  const auto report = proposed_power({256, 2}, kTech, kTyp, 100.0);
  EXPECT_GT(report.total_uw(), 0.0);
  // The clock-carrying line dominates.
  EXPECT_GT(report.block_percent("Delay Line"), 50.0);
  // Every block contributes something.
  for (const auto& block : report.blocks) {
    EXPECT_GT(block.power_uw, 0.0) << block.name;
  }
  EXPECT_DOUBLE_EQ(report.block_percent("no such block"), 0.0);
}

TEST(Power, ProposedBeatsConventionalByMoreThanArea) {
  // Area ratio is ~0.58 (Table 5); the power ratio must be smaller still,
  // because the conventional scheme also clocks its unselected branches.
  const auto proposed = proposed_power({256, 2}, kTech, kTyp, 100.0);
  const auto conventional = conventional_power({64, 4, 2}, kTech, kTyp, 100.0);
  const double power_ratio = proposed.total_uw() / conventional.total_uw();
  EXPECT_LT(power_ratio, 0.58);
}

TEST(Power, PowerGrowsWithClockDespiteShrinkingArea) {
  // Table 6's area shrinks 50 -> 200 MHz; power must still grow.
  const auto at_50 = proposed_power({256, 4}, kTech, kTyp, 50.0);
  const auto at_200 = proposed_power({256, 1}, kTech, kTyp, 200.0);
  EXPECT_GT(at_200.total_uw(), at_50.total_uw());
}

}  // namespace
}  // namespace ddl::synth
