// Tests for the conventional adjustable-cells delay line and its
// shift-register controller (thesis section 3.2.1).
#include <gtest/gtest.h>

#include <cmath>

#include "ddl/analysis/linearity.h"
#include "ddl/core/calibrated_dpwm.h"
#include "ddl/core/conventional_controller.h"
#include "ddl/core/conventional_line.h"

namespace ddl::core {
namespace {

using cells::OperatingPoint;

const cells::Technology kTech = cells::Technology::i32nm_class();
constexpr double kPeriod100MHz = 10'000.0;

ConventionalLineConfig config_100mhz() {
  // The section 4.2.1 design: 64 cells x 4 branches x 2 buffers/element.
  return ConventionalLineConfig{64, 4, 2};
}

TEST(ConventionalConfig, ControlAndShiftRegisterSizes) {
  const auto config = config_100mhz();
  EXPECT_EQ(config.control_bits_per_cell(), 2);       // Eq 16 with m=4.
  EXPECT_EQ(config.shift_register_bits(), 129u);      // Eq 17: 2x64+1.
  EXPECT_EQ(config.max_elements(), 256u);             // Eq 24.
}

TEST(ConventionalLine, RejectsBadConfigs) {
  EXPECT_THROW(ConventionalDelayLine(kTech, ConventionalLineConfig{63, 4, 2}),
               std::invalid_argument);
  EXPECT_THROW(ConventionalDelayLine(kTech, ConventionalLineConfig{64, 0, 2}),
               std::invalid_argument);
}

TEST(ConventionalLine, SettingsSelectBranchDelays) {
  ConventionalDelayLine line(kTech, config_100mhz());
  const auto op = OperatingPoint::typical();
  // Element = 2 buffers = 80 ps typical; branch b = (b+1) elements.
  EXPECT_DOUBLE_EQ(line.cell_delay_ps(0, op), 80.0);
  line.set_setting(0, 3);
  EXPECT_DOUBLE_EQ(line.cell_delay_ps(0, op), 320.0);
  EXPECT_THROW(line.set_setting(0, 4), std::out_of_range);
}

TEST(ConventionalLine, MinimumAndMaximumLineDelays) {
  ConventionalDelayLine line(kTech, config_100mhz());
  const auto op = OperatingPoint::fast_process_only();
  // Minimum (all shortest): 64 x 2 x 20 ps = 2.56 ns at the fast corner.
  EXPECT_DOUBLE_EQ(line.line_delay_ps(op), 2'560.0);
  for (std::size_t i = 0; i < line.size(); ++i) {
    line.set_setting(i, 3);
  }
  // Eq 29: maximum = 256 elements x 40 ps = 10.24 ns: covers the period.
  EXPECT_DOUBLE_EQ(line.line_delay_ps(op), 10'240.0);
  line.reset_settings();
  EXPECT_DOUBLE_EQ(line.line_delay_ps(op), 2'560.0);
  EXPECT_EQ(line.total_increments(), 0u);
}

TEST(BitReverse, KnownValues) {
  EXPECT_EQ(bit_reverse(0b000, 3), 0b000u);
  EXPECT_EQ(bit_reverse(0b001, 3), 0b100u);
  EXPECT_EQ(bit_reverse(0b011, 3), 0b110u);
  EXPECT_EQ(bit_reverse(0b101, 6), 0b101000u);
}

TEST(BitReverse, IsAnInvolutionAndPermutation) {
  std::vector<bool> seen(64, false);
  for (std::size_t i = 0; i < 64; ++i) {
    const std::size_t r = bit_reverse(i, 6);
    EXPECT_EQ(bit_reverse(r, 6), i);
    ASSERT_LT(r, 64u);
    EXPECT_FALSE(seen[r]);
    seen[r] = true;
  }
}

// ---- Controller locking ---------------------------------------------------

struct ConventionalCornerCase {
  OperatingPoint op;
  // Elements needed beyond the minimum 64: period/element - 64.
  double expected_shifts;
};

class ConventionalLockAcrossCorners
    : public ::testing::TestWithParam<ConventionalCornerCase> {};

TEST_P(ConventionalLockAcrossCorners, LocksWithExpectedShiftCount) {
  const auto& param = GetParam();
  ConventionalDelayLine line(kTech, config_100mhz());
  ConventionalController controller(line, kPeriod100MHz);
  const auto cycles = controller.run_to_lock(param.op);
  ASSERT_TRUE(cycles.has_value())
      << "corner " << to_string(param.op.corner);
  // Locked means: the Figure 37 window (or floor lock) holds, or the walk
  // crossed the period exactly (crossing detection), leaving at most one
  // element of residual error.
  const double element = line.nominal_element_delay_ps() *
                         cells::delay_derating(param.op);
  EXPECT_TRUE(controller.is_lock_condition_met(param.op) ||
              std::abs(line.line_delay_ps(param.op) - kPeriod100MHz) <=
                  1.1 * element);
  EXPECT_NEAR(static_cast<double>(controller.shifts()), param.expected_shifts,
              2.0);
  // Each update costs cycles_per_update clock cycles.
  EXPECT_EQ(*cycles, (controller.shifts() + 1) *
                         static_cast<std::uint64_t>(
                             controller.cycles_per_update()));
}

INSTANTIATE_TEST_SUITE_P(
    Corners, ConventionalLockAcrossCorners,
    ::testing::Values(
        // Fast: element 40 ps, need 250 elements, have 64 -> 186 shifts.
        ConventionalCornerCase{OperatingPoint::fast_process_only(), 186.0},
        // Typical: element 80 ps, need 125 -> 61 shifts.
        ConventionalCornerCase{OperatingPoint::typical(), 61.0},
        // Slow: element 160 ps, need 62.5 -> locks almost immediately.
        ConventionalCornerCase{OperatingPoint::slow_process_only(), 0.0}));

TEST(ConventionalController, UpLimWhenPeriodTooLong) {
  ConventionalDelayLine line(kTech, config_100mhz());
  // Max fast delay is 10.24 ns but ask for 100 ns: impossible.
  ConventionalController controller(line, 100'000.0);
  EXPECT_FALSE(
      controller.run_to_lock(OperatingPoint::fast_process_only()).has_value());
  EXPECT_EQ(controller.status(), LockStatus::kAtLimit);
  EXPECT_TRUE(controller.at_limit());
}

TEST(ConventionalController, AtLimitWhenPeriodShorterThanMinimum) {
  ConventionalDelayLine line(kTech, config_100mhz());
  // Minimum slow-corner delay is 64 x 160 ps = 10.24 ns > 5 ns period.
  ConventionalController controller(line, 5'000.0);
  EXPECT_FALSE(
      controller.run_to_lock(OperatingPoint::slow_process_only()).has_value());
  EXPECT_EQ(controller.status(), LockStatus::kAtLimit);
}

TEST(ConventionalController, CalibrationSlowerThanProposedAtSameCorner) {
  // The thesis's calibration-time claim: the proposed controller updates
  // every cycle; the conventional one needs sync+compare cycles per shift
  // and walks element-by-element.
  ConventionalDelayLine conv_line(kTech, config_100mhz());
  ConventionalController conv(conv_line, kPeriod100MHz);
  const auto conv_cycles =
      conv.run_to_lock(OperatingPoint::fast_process_only());
  ASSERT_TRUE(conv_cycles.has_value());

  ProposedDelayLine prop_line(kTech, ProposedLineConfig{256, 2});
  ProposedController prop(prop_line, kPeriod100MHz);
  const auto prop_cycles =
      prop.run_to_lock(OperatingPoint::fast_process_only());
  ASSERT_TRUE(prop_cycles.has_value());

  EXPECT_GT(*conv_cycles, *prop_cycles);
}

// ---- Locking-order linearity (Figures 41/42) -------------------------------

double max_inl_after_lock(LockingOrder order, std::uint64_t seed) {
  ConventionalDelayLine line(kTech, config_100mhz(), seed);
  ConventionalController controller(line, kPeriod100MHz, order);
  const auto op = OperatingPoint::typical();
  if (!controller.run_to_lock(op).has_value()) {
    ADD_FAILURE() << "failed to lock";
    return 0.0;
  }
  return analysis::analyze_linearity(line.tap_delays(op)).max_inl_lsb;
}

TEST(LockingOrders, AllOrdersLockToSameTotalDelay) {
  const auto op = OperatingPoint::typical();
  for (LockingOrder order : {LockingOrder::kCellMajor, LockingOrder::kLevelMajor,
                             LockingOrder::kInterleaved}) {
    ConventionalDelayLine line(kTech, config_100mhz());
    ConventionalController controller(line, kPeriod100MHz, order);
    ASSERT_TRUE(controller.run_to_lock(op).has_value());
    EXPECT_NEAR(line.line_delay_ps(op), kPeriod100MHz, 170.0);
  }
}

TEST(LockingOrders, CellMajorIsLeastLinear) {
  // Figure 42: concentrating long cells at the head of the line is the
  // linearity worst case; spreading increments (scenario 2) is better.
  const double cell_major = max_inl_after_lock(LockingOrder::kCellMajor, 0);
  const double level_major = max_inl_after_lock(LockingOrder::kLevelMajor, 0);
  const double interleaved = max_inl_after_lock(LockingOrder::kInterleaved, 0);
  EXPECT_GT(cell_major, level_major);
  EXPECT_GT(cell_major, 3.0 * interleaved);
}

TEST(LockingOrders, InterleavedBeatsLevelMajor) {
  // kLevelMajor at typical stops mid-round (cells 0..60 long, 61..63
  // short); interleaving spreads that partial round across the line.
  const double level_major = max_inl_after_lock(LockingOrder::kLevelMajor, 0);
  const double interleaved = max_inl_after_lock(LockingOrder::kInterleaved, 0);
  EXPECT_LT(interleaved, level_major);
}

// ---- System facade ----------------------------------------------------------

TEST(ConventionalDpwmSystem, CalibratesAndGenerates) {
  ConventionalDelayLine line(kTech, config_100mhz());
  ConventionalDpwmSystem system(line, kPeriod100MHz);
  ASSERT_TRUE(system.calibrate().has_value());
  EXPECT_EQ(system.bits(), 6);
  const auto pwm = system.generate(0, 32);  // Word 32 of 64 = ~50%.
  EXPECT_NEAR(pwm.duty(), 0.5, 0.03);
}

class ConventionalSystemCorners
    : public ::testing::TestWithParam<OperatingPoint> {};

TEST_P(ConventionalSystemCorners, DutySweepTracksRequest) {
  ConventionalDelayLine line(kTech, config_100mhz());
  ConventionalDpwmSystem system(line, kPeriod100MHz);
  system.set_environment(EnvironmentSchedule(GetParam()));
  ASSERT_TRUE(system.calibrate().has_value());
  for (std::uint64_t word = 8; word < 64; word += 8) {
    const auto pwm = system.generate(0, word);
    const double requested = static_cast<double>(word) / 64.0;
    EXPECT_NEAR(pwm.duty(), requested, 0.06) << "word " << word;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Corners, ConventionalSystemCorners,
    ::testing::Values(OperatingPoint::fast_process_only(),
                      OperatingPoint::typical(),
                      OperatingPoint::slow_process_only()));

}  // namespace
}  // namespace ddl::core
