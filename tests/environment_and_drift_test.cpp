// Tests for the environment scheduler and both schemes' continuous
// recalibration under drift -- including the conventional controller's
// locked-latch paths (hold, re-shift when too short, reset when too long).
#include <gtest/gtest.h>

#include <cmath>

#include "ddl/core/calibrated_dpwm.h"

namespace ddl::core {
namespace {

using cells::OperatingPoint;

const cells::Technology kTech = cells::Technology::i32nm_class();

// ---- EnvironmentSchedule ---------------------------------------------------

TEST(Environment, ConstantScheduleReturnsStart) {
  EnvironmentSchedule env(OperatingPoint::slow_process_only());
  const auto op = env.at(sim::from_us(100.0));
  EXPECT_EQ(op.corner, cells::ProcessCorner::kSlow);
  EXPECT_DOUBLE_EQ(op.temperature_c, OperatingPoint::kNominalTemperatureC);
}

TEST(Environment, TemperatureRampIsLinearInTime) {
  EnvironmentSchedule env =
      EnvironmentSchedule(OperatingPoint::typical()).with_temperature_ramp(2.5);
  EXPECT_DOUBLE_EQ(env.at(0).temperature_c, 25.0);
  EXPECT_DOUBLE_EQ(env.at(sim::from_us(10.0)).temperature_c, 50.0);
  EXPECT_DOUBLE_EQ(env.at(sim::from_us(40.0)).temperature_c, 125.0);
}

TEST(Environment, SpikesAreHalfOpenAndStack) {
  EnvironmentSchedule env =
      EnvironmentSchedule(OperatingPoint::typical())
          .with_voltage_spike(100, 200, -0.1)
          .with_voltage_spike(150, 250, -0.05);
  EXPECT_DOUBLE_EQ(env.at(99).supply_v, 1.0);
  EXPECT_DOUBLE_EQ(env.at(100).supply_v, 0.9);
  EXPECT_DOUBLE_EQ(env.at(175).supply_v, 0.85);  // Both active.
  EXPECT_DOUBLE_EQ(env.at(200).supply_v, 0.95);  // First ended (half-open).
  EXPECT_DOUBLE_EQ(env.at(250).supply_v, 1.0);
}

TEST(Environment, RampAndSpikeCompose) {
  EnvironmentSchedule env = EnvironmentSchedule(OperatingPoint::typical())
                                .with_temperature_ramp(1.0)
                                .with_voltage_spike(0, 10, 0.2);
  const auto op = env.at(5);
  EXPECT_DOUBLE_EQ(op.supply_v, 1.2);
  EXPECT_GT(cells::delay_derating(env.at(sim::from_us(50.0))),
            cells::delay_derating(env.at(0)));
}

TEST(Environment, OverlappingOppositeSpikesCancelInTheOverlap) {
  EnvironmentSchedule env = EnvironmentSchedule(OperatingPoint::typical())
                                .with_voltage_spike(100, 300, -0.15)
                                .with_voltage_spike(200, 400, 0.15);
  EXPECT_DOUBLE_EQ(env.at(150).supply_v, 0.85);  // Only the droop.
  EXPECT_DOUBLE_EQ(env.at(250).supply_v, 1.0);   // Overlap: exact cancel.
  EXPECT_DOUBLE_EQ(env.at(350).supply_v, 1.15);  // Only the surge.
}

TEST(Environment, SpikeBoundariesLandExactlyOnSampleInstants) {
  // A controller sampling at t = from must already see the spike, and one
  // sampling at t = until must not (half-open [from, until)) -- no
  // off-by-one at either boundary even when the sample instant coincides.
  EnvironmentSchedule env = EnvironmentSchedule(OperatingPoint::typical())
                                .with_voltage_spike(10'000, 20'000, -0.2);
  EXPECT_DOUBLE_EQ(env.at(9'999).supply_v, 1.0);
  EXPECT_DOUBLE_EQ(env.at(10'000).supply_v, 0.8);
  EXPECT_DOUBLE_EQ(env.at(19'999).supply_v, 0.8);
  EXPECT_DOUBLE_EQ(env.at(20'000).supply_v, 1.0);
}

TEST(Environment, ZeroWidthSpikeNeverApplies) {
  EnvironmentSchedule env = EnvironmentSchedule(OperatingPoint::typical())
                                .with_voltage_spike(500, 500, -0.3);
  EXPECT_DOUBLE_EQ(env.at(499).supply_v, 1.0);
  EXPECT_DOUBLE_EQ(env.at(500).supply_v, 1.0);
  EXPECT_DOUBLE_EQ(env.at(501).supply_v, 1.0);
}

TEST(Environment, NegativeTemperatureRampCoolsAndSpeedsTheDie) {
  EnvironmentSchedule env = EnvironmentSchedule(OperatingPoint::typical())
                                .with_temperature_ramp(-2.0);
  EXPECT_DOUBLE_EQ(env.at(0).temperature_c, 25.0);
  EXPECT_DOUBLE_EQ(env.at(sim::from_us(10.0)).temperature_c, 5.0);
  EXPECT_DOUBLE_EQ(env.at(sim::from_us(30.0)).temperature_c, -35.0);
  // Cooling speeds the cells up: derating falls monotonically in time.
  EXPECT_LT(cells::delay_derating(env.at(sim::from_us(30.0))),
            cells::delay_derating(env.at(0)));
}

TEST(ProposedDrift, NegativeRampTracksDownwardInTapSel) {
  // The proposed controller under a cooling die: cells speed up, so more of
  // them fit in half a period and tap_sel must climb.
  ProposedDelayLine line(kTech, {256, 2});
  ProposedDpwmSystem system(line, 10'000.0);
  system.set_environment(EnvironmentSchedule(OperatingPoint::typical())
                             .with_temperature_ramp(-6.0));
  ASSERT_TRUE(system.calibrate().has_value());
  const std::size_t cool_start = system.controller().tap_sel();
  sim::Time t = 0;
  for (int i = 0; i < 1000; ++i) {  // 10 us: 25 C -> -35 C.
    system.generate(t, 128);
    t += system.period_ps();
  }
  EXPECT_GT(system.controller().tap_sel(), cool_start);
  const auto pwm = system.generate(t, 128);
  EXPECT_NEAR(pwm.duty(), 0.5, 0.02);
}

// ---- Conventional continuous recalibration ------------------------------------

TEST(ConventionalDrift, LockedLatchHoldsUnderSmallDrift) {
  ConventionalDelayLine line(kTech, {64, 4, 2});
  ConventionalController controller(line, 10'000.0);
  OperatingPoint op = OperatingPoint::typical();
  ASSERT_TRUE(controller.run_to_lock(op).has_value());
  const std::size_t shifts_at_lock = controller.shifts();
  // A small temperature wiggle (under the 2-element tolerance) must not
  // disturb the register.
  op.temperature_c = 35.0;
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(controller.step(op), LockStatus::kLocked);
  }
  EXPECT_EQ(controller.shifts(), shifts_at_lock);
}

TEST(ConventionalDrift, CoolingResumesShifting) {
  // Cooling shortens the line below the period: the controller must leave
  // the locked state and add elements (no reset needed).
  ConventionalDelayLine line(kTech, {64, 4, 2});
  ConventionalController controller(line, 10'000.0);
  OperatingPoint op = OperatingPoint::typical();
  ASSERT_TRUE(controller.run_to_lock(op).has_value());
  const std::size_t shifts_at_lock = controller.shifts();

  op.temperature_c = -40.0;  // ~7.8% faster cells.
  LockStatus status = LockStatus::kSearching;
  for (int i = 0; i < 40 && status != LockStatus::kLocked; ++i) {
    status = controller.step(op);
  }
  EXPECT_EQ(status, LockStatus::kLocked);
  EXPECT_GT(controller.shifts(), shifts_at_lock);
  EXPECT_NEAR(line.line_delay_ps(op), 10'000.0, 2.5 * 80.0);
}

TEST(ConventionalDrift, HeatingForcesRestartAndRelock) {
  // Heating stretches the line past the tolerance: the shift register can
  // only restart (reset) and walk up again -- the expensive recalibration
  // the thesis charges this scheme with.
  ConventionalDelayLine line(kTech, {64, 4, 2});
  ConventionalController controller(line, 10'000.0);
  OperatingPoint op = OperatingPoint::typical();
  ASSERT_TRUE(controller.run_to_lock(op).has_value());

  op.temperature_c = 125.0;  // ~12% slower cells.
  // First step detects the overshoot and resets; then the walk repeats.
  controller.step(op);
  EXPECT_EQ(controller.status(), LockStatus::kSearching);
  EXPECT_EQ(line.total_increments(), 0u);
  ASSERT_TRUE(controller.run_to_lock(op).has_value());
  EXPECT_NEAR(line.line_delay_ps(op), 10'000.0, 2.5 * 80.0 * 1.12);
}

TEST(ConventionalDrift, SystemKeepsDutyThroughSlowRamp) {
  // End to end: the conventional system under a slow thermal ramp.  Its
  // re-locks are costly but the executed duty must stay near the request.
  ConventionalDelayLine line(kTech, {64, 4, 2});
  ConventionalDpwmSystem system(line, 10'000.0);
  system.set_environment(EnvironmentSchedule(OperatingPoint::typical())
                             .with_temperature_ramp(0.5));
  ASSERT_TRUE(system.calibrate().has_value());
  sim::Time t = 0;
  double worst_error = 0.0;
  std::uint64_t settled_periods = 0;
  for (int i = 0; i < 4000; ++i) {
    const auto pwm = system.generate(t, 32);
    t += system.period_ps();
    // Exclude re-lock windows (delay during a reset walk is short).
    if (system.controller().status() == LockStatus::kLocked) {
      ++settled_periods;
      worst_error = std::max(worst_error, std::abs(pwm.duty() - 0.515625));
    }
  }
  EXPECT_GT(settled_periods, 3000u);
  EXPECT_LT(worst_error, 0.06);
}

// ---- Proposed scheme under the same ramp (for contrast) -----------------------

TEST(ProposedDrift, NoResetEverUnderTheSameRamp) {
  ProposedDelayLine line(kTech, {256, 2});
  ProposedDpwmSystem system(line, 10'000.0);
  system.set_environment(EnvironmentSchedule(OperatingPoint::typical())
                             .with_temperature_ramp(0.5));
  ASSERT_TRUE(system.calibrate().has_value());
  sim::Time t = 0;
  int unlocked_periods = 0;
  for (int i = 0; i < 4000; ++i) {
    system.generate(t, 128);
    t += system.period_ps();
    if (system.controller().status() != LockStatus::kLocked) {
      ++unlocked_periods;
    }
  }
  // The +/-1 tracker absorbs the whole ramp without ever losing lock.
  EXPECT_EQ(unlocked_periods, 0);
}

}  // namespace
}  // namespace ddl::core
