// Stress/property tests for the event kernel: randomized combinational DAGs
// simulated event-by-event must settle to the same values a direct
// (zero-delay) evaluation produces, for many seeds and topologies.
#include <gtest/gtest.h>

#include <random>
#include <type_traits>

#include "ddl/analysis/monte_carlo.h"
#include "ddl/sim/gates.h"
#include "ddl/sim/simulator.h"

namespace ddl::sim {
namespace {

const cells::Technology kTech = cells::Technology::i32nm_class();

/// A random DAG over NAND/NOR/XOR/AND/OR/INV gates, plus a mirror
/// evaluator.
struct RandomDag {
  struct GateSpec {
    int kind;          // 0..5
    int a, b;          // Node indices (b unused for INV).
  };
  int inputs;
  std::vector<GateSpec> gates;

  static RandomDag make(std::uint64_t seed, int inputs, int gate_count) {
    RandomDag dag;
    dag.inputs = inputs;
    std::mt19937_64 rng(seed);
    for (int g = 0; g < gate_count; ++g) {
      const int existing = inputs + g;
      std::uniform_int_distribution<int> node(0, existing - 1);
      std::uniform_int_distribution<int> kind(0, 5);
      dag.gates.push_back({kind(rng), node(rng), node(rng)});
    }
    return dag;
  }

  /// Direct evaluation with zero delays.
  std::vector<bool> evaluate(const std::vector<bool>& in) const {
    std::vector<bool> value(in);
    value.reserve(in.size() + gates.size());
    for (const GateSpec& gate : gates) {
      const bool a = value[static_cast<std::size_t>(gate.a)];
      const bool b = value[static_cast<std::size_t>(gate.b)];
      switch (gate.kind) {
        case 0: value.push_back(!(a && b)); break;  // NAND
        case 1: value.push_back(!(a || b)); break;  // NOR
        case 2: value.push_back(a != b); break;     // XOR
        case 3: value.push_back(a && b); break;     // AND
        case 4: value.push_back(a || b); break;     // OR
        default: value.push_back(!a); break;        // INV
      }
    }
    return value;
  }
};

class RandomDagEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomDagEquivalence, EventSimulationSettlesToDirectEvaluation) {
  const std::uint64_t seed = GetParam();
  constexpr int kInputs = 8;
  constexpr int kGates = 60;
  const RandomDag dag = RandomDag::make(seed, kInputs, kGates);

  Simulator sim;
  NetlistContext ctx{&sim, &kTech, cells::OperatingPoint::typical()};
  std::vector<SignalId> nodes;
  for (int i = 0; i < kInputs; ++i) {
    nodes.push_back(sim.add_signal("in" + std::to_string(i)));
  }
  for (std::size_t g = 0; g < dag.gates.size(); ++g) {
    const auto& gate = dag.gates[g];
    const SignalId out = sim.add_signal("g" + std::to_string(g));
    const SignalId a = nodes[static_cast<std::size_t>(gate.a)];
    const SignalId b = nodes[static_cast<std::size_t>(gate.b)];
    switch (gate.kind) {
      case 0: make_nand2(ctx, a, b, out); break;
      case 1: make_nor2(ctx, a, b, out); break;
      case 2: make_xor2(ctx, a, b, out); break;
      case 3: make_and2(ctx, a, b, out); break;
      case 4: make_or2(ctx, a, b, out); break;
      default: make_inverter(ctx, a, out); break;
    }
    nodes.push_back(out);
  }

  // Several random input vectors applied in sequence; after the network
  // settles, every node must match the direct evaluation.
  std::mt19937_64 rng(seed ^ 0xabcdef);
  for (int vector = 0; vector < 5; ++vector) {
    std::vector<bool> in(kInputs);
    for (int i = 0; i < kInputs; ++i) {
      in[static_cast<std::size_t>(i)] = (rng() & 1) != 0;
      sim.schedule(nodes[static_cast<std::size_t>(i)],
                   from_bool(in[static_cast<std::size_t>(i)]), 0);
    }
    sim.run();  // Settle completely.
    const auto expected = dag.evaluate(in);
    for (std::size_t n = 0; n < nodes.size(); ++n) {
      ASSERT_EQ(sim.value(nodes[n]), from_bool(expected[n]))
          << "seed " << seed << " vector " << vector << " node " << n;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomDagEquivalence,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

TEST(KernelStress, DeepChainSettlesAndCountsEvents) {
  Simulator sim;
  NetlistContext ctx{&sim, &kTech, cells::OperatingPoint::typical()};
  const SignalId in = sim.add_signal("in", Logic::k0);
  const auto taps = make_buffer_chain(ctx, in, 10'000);
  sim.schedule(in, Logic::k1, 0);
  sim.run();
  EXPECT_EQ(sim.value(taps.back()), Logic::k1);
  EXPECT_GE(sim.executed_events(), 10'000u);
}

// ---- Threading contract (DESIGN.md) ---------------------------------------
//
// The Simulator is documented "not thread-safe; one kernel per testbench".
// The analysis layer's parallel sweeps respect this by constructing one
// kernel per trial inside the experiment callback.  These checks codify
// both halves of the contract.

// A kernel cannot be duplicated into another thread by copy -- sharing one
// across threads requires deliberately passing a reference, which the
// parallel experiment callbacks never do.
static_assert(!std::is_copy_constructible_v<Simulator>,
              "Simulator must stay non-copyable: one kernel per testbench");
static_assert(!std::is_copy_assignable_v<Simulator>,
              "Simulator must stay non-copy-assignable");

TEST(KernelStress, OneKernelPerThreadUnderParallelSweep) {
  // Each Monte-Carlo trial builds its own Simulator, wiggles a seeded
  // random DAG and reports the executed event count.  Running the sweep on
  // 1 thread and on 4 must agree exactly: kernels are fully independent,
  // so parallelism cannot change any die's result.
  const auto experiment = [](std::uint64_t seed) {
    const RandomDag dag = RandomDag::make(seed, 6, 40);
    Simulator sim;
    NetlistContext ctx{&sim, &kTech, cells::OperatingPoint::typical()};
    std::vector<SignalId> nodes;
    for (int i = 0; i < dag.inputs; ++i) {
      nodes.push_back(sim.add_signal("in" + std::to_string(i)));
    }
    for (std::size_t g = 0; g < dag.gates.size(); ++g) {
      const auto& gate = dag.gates[g];
      const SignalId out = sim.add_signal("g" + std::to_string(g));
      const SignalId a = nodes[static_cast<std::size_t>(gate.a)];
      const SignalId b = nodes[static_cast<std::size_t>(gate.b)];
      switch (gate.kind) {
        case 0: make_nand2(ctx, a, b, out); break;
        case 1: make_nor2(ctx, a, b, out); break;
        case 2: make_xor2(ctx, a, b, out); break;
        case 3: make_and2(ctx, a, b, out); break;
        case 4: make_or2(ctx, a, b, out); break;
        default: make_inverter(ctx, a, out); break;
      }
      nodes.push_back(out);
    }
    std::mt19937_64 rng(seed);
    for (int i = 0; i < dag.inputs; ++i) {
      sim.schedule(nodes[static_cast<std::size_t>(i)],
                   from_bool((rng() & 1) != 0), 0);
    }
    sim.run();
    return static_cast<double>(sim.executed_events());
  };

  const auto serial = analysis::monte_carlo(24, 2024, experiment, 1);
  const auto parallel = analysis::monte_carlo(24, 2024, experiment, 4);
  EXPECT_EQ(serial.mean, parallel.mean);
  EXPECT_EQ(serial.stddev, parallel.stddev);
  EXPECT_EQ(serial.min, parallel.min);
  EXPECT_EQ(serial.max, parallel.max);
  EXPECT_EQ(serial.p05, parallel.p05);
  EXPECT_EQ(serial.p50, parallel.p50);
  EXPECT_EQ(serial.p95, parallel.p95);
  EXPECT_EQ(serial.count, parallel.count);
  EXPECT_GT(serial.mean, 0.0);  // The DAGs actually simulated something.
}

TEST(KernelStress, GlitchShorterThanGateDelayIsSwallowed) {
  // Inertial-delay property on an allocated lane: a 10 ps pulse through a
  // 40 ps buffer never reaches the output.
  Simulator sim;
  NetlistContext ctx{&sim, &kTech, cells::OperatingPoint::typical()};
  const SignalId in = sim.add_signal("in", Logic::k0);
  const SignalId out = sim.add_signal("out", Logic::k0);
  make_buffer(ctx, in, out);
  int out_changes = 0;
  sim.on_change(out, [&out_changes](const SignalEvent&) { ++out_changes; });
  sim.schedule(in, Logic::k1, 100);
  sim.schedule(in, Logic::k0, 110);  // 10 ps pulse.
  sim.run();
  EXPECT_EQ(out_changes, 0);
  EXPECT_EQ(sim.value(out), Logic::k0);
}

}  // namespace
}  // namespace ddl::sim
